"""SINR → packet reception ratio for IEEE 802.15.4 (CC2420-class) radios.

We use the standard analytical model for the 2.4 GHz O-QPSK PHY with DSSS
(as used in TOSSIM and the Zuniga-Krishnamachari link-layer study): the
chip-level SINR determines a symbol error probability, which yields a bit
error rate and finally the probability that an entire frame (plus its ACK)
is received intact.

The curve has the characteristic sharp transition region: below ~ -1 dB
SINR almost nothing gets through, above ~ 4 dB almost everything does.
This is exactly the *capture effect* the paper relies on — a concurrent
transmission only destroys a packet when it pushes the SINR into or below
the transition region.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

#: Default 802.15.4 data frame size in bytes (max PSDU is 127 + overhead).
DEFAULT_FRAME_BYTES = 60

#: ACK frame size in bytes.
ACK_FRAME_BYTES = 11


@lru_cache(maxsize=None)
def _ber_coefficients() -> tuple:
    """Precompute the alternating-series coefficients for the BER formula."""
    coefficients = []
    for k in range(2, 17):
        coefficients.append(((-1) ** k) * math.comb(16, k))
    return tuple(coefficients)


def bit_error_rate(sinr_db: float) -> float:
    """Bit error rate of the 802.15.4 2.4 GHz PHY at a given SINR.

    Uses the non-coherent 16-ary orthogonal demodulation approximation::

        BER = (8/15) * (1/16) * sum_{k=2}^{16} (-1)^k C(16,k) exp(20*SINR*(1/k - 1))

    with SINR in linear scale.
    """
    sinr_linear = 10.0 ** (sinr_db / 10.0)
    total = 0.0
    for k, coefficient in zip(range(2, 17), _ber_coefficients()):
        total += coefficient * math.exp(20.0 * sinr_linear * (1.0 / k - 1.0))
    ber = (8.0 / 15.0) * (1.0 / 16.0) * total
    return min(max(ber, 0.0), 1.0)


def frame_success_probability(sinr_db: float,
                              frame_bytes: int = DEFAULT_FRAME_BYTES) -> float:
    """Probability that a frame of the given size is received intact."""
    if frame_bytes <= 0:
        raise ValueError("frame_bytes must be positive")
    ber = bit_error_rate(sinr_db)
    return (1.0 - ber) ** (8 * frame_bytes)


def prr(sinr_db: float, frame_bytes: int = DEFAULT_FRAME_BYTES,
        include_ack: bool = True) -> float:
    """Packet reception ratio: data frame and (optionally) its ACK succeed.

    WirelessHART counts a transmission as successful only when the ACK is
    received, so by default the ACK's success probability (computed at the
    same SINR, a reasonable symmetry assumption for short ACKs) is folded
    in.
    """
    probability = frame_success_probability(sinr_db, frame_bytes)
    if include_ack:
        probability *= frame_success_probability(sinr_db, ACK_FRAME_BYTES)
    return probability


def prr_curve(sinr_db_values, frame_bytes: int = DEFAULT_FRAME_BYTES,
              include_ack: bool = True) -> np.ndarray:
    """Vectorized :func:`prr` over an array of SINR values."""
    return np.array([prr(float(s), frame_bytes, include_ack)
                     for s in np.asarray(sinr_db_values, dtype=float)])


class PrrCurve:
    """Tabulated, optionally smoothed SINR (dB) → PRR mapping.

    The analytic 802.15.4 curve has a transition region barely 1 dB wide.
    Measured link curves (the CC2420 "grey region") are far wider because
    noise-floor variation, frame-to-frame channel dynamics, and hardware
    differences blur the cliff.  We model this by convolving the analytic
    curve with a Gaussian in the SINR domain — the result is the *expected*
    PRR at a nominal SINR, marginalized over those unmodeled variations.

    The same curve instance must be used for testbed synthesis and for
    the simulator's reception draws so that "measured" PRRs and run-time
    behaviour agree.

    Args:
        frame_bytes: Data frame size.
        smoothing_sigma_db: Grey-region width (0 disables smoothing).
        lo_db / hi_db / step_db: Tabulation grid.
    """

    def __init__(self, frame_bytes: int = DEFAULT_FRAME_BYTES,
                 smoothing_sigma_db: float = 2.5,
                 lo_db: float = -30.0, hi_db: float = 30.0,
                 step_db: float = 0.05):
        if smoothing_sigma_db < 0:
            raise ValueError("smoothing_sigma_db must be non-negative")
        if hi_db <= lo_db:
            raise ValueError("hi_db must exceed lo_db")
        self.frame_bytes = frame_bytes
        self.smoothing_sigma_db = smoothing_sigma_db
        self._grid = np.arange(lo_db, hi_db + step_db, step_db)
        values = np.array([prr(float(s), frame_bytes) for s in self._grid])
        if smoothing_sigma_db > 0.0:
            values = _gaussian_smooth(values, smoothing_sigma_db / step_db)
        self._values = values

    def __call__(self, sinr_db: float) -> float:
        """Expected PRR at one SINR value."""
        return float(np.interp(sinr_db, self._grid, self._values,
                               left=self._values[0], right=self._values[-1]))

    def many(self, sinr_db) -> np.ndarray:
        """Vectorized evaluation."""
        return np.interp(np.asarray(sinr_db, dtype=float),
                         self._grid, self._values,
                         left=self._values[0], right=self._values[-1])

    def inverse(self, target_prr: float) -> float:
        """SINR (dB) at which the curve reaches the target PRR."""
        if not 0.0 < target_prr < 1.0:
            raise ValueError("target_prr must be strictly between 0 and 1")
        index = int(np.searchsorted(self._values, target_prr))
        index = min(max(index, 0), len(self._grid) - 1)
        return float(self._grid[index])


def _gaussian_smooth(values: np.ndarray, sigma_steps: float) -> np.ndarray:
    """Convolve with a normalized Gaussian kernel (edge-replicated)."""
    half = int(math.ceil(4.0 * sigma_steps))
    offsets = np.arange(-half, half + 1)
    kernel = np.exp(-0.5 * (offsets / sigma_steps) ** 2)
    kernel /= kernel.sum()
    padded = np.concatenate([
        np.full(half, values[0]), values, np.full(half, values[-1])])
    return np.convolve(padded, kernel, mode="valid")


@lru_cache(maxsize=32)
def get_prr_curve(frame_bytes: int = DEFAULT_FRAME_BYTES,
                  smoothing_sigma_db: float = 2.5) -> PrrCurve:
    """Shared, cached :class:`PrrCurve` instances."""
    return PrrCurve(frame_bytes=frame_bytes,
                    smoothing_sigma_db=smoothing_sigma_db)


def sinr_for_prr(target_prr: float,
                 frame_bytes: int = DEFAULT_FRAME_BYTES,
                 include_ack: bool = True,
                 lo_db: float = -10.0, hi_db: float = 15.0) -> float:
    """Invert the PRR curve: the SINR (dB) at which PRR equals the target.

    Uses bisection on the monotone PRR curve.  Useful for calibrating
    testbed synthesis (e.g. placing links deliberately inside the
    transition region).
    """
    if not 0.0 < target_prr < 1.0:
        raise ValueError("target_prr must be strictly between 0 and 1")
    lo, hi = lo_db, hi_db
    if prr(lo, frame_bytes, include_ack) > target_prr:
        raise ValueError("target below the PRR at lo_db")
    if prr(hi, frame_bytes, include_ack) < target_prr:
        raise ValueError("target above the PRR at hi_db")
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if prr(mid, frame_bytes, include_ack) < target_prr:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)
