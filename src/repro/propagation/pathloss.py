"""Indoor radio propagation: log-distance path loss with floor attenuation.

The synthetic testbeds (:mod:`repro.testbeds`) and the simulator's
SINR-based reception model (:mod:`repro.simulator.radio`) share this
substrate.  We use the classic log-distance model with a floor-attenuation
factor, which is the standard model for multi-floor office deployments
such as Indriya and the WUSTL testbed:

    PL(d) = PL(d0) + 10 * n * log10(d / d0) + FAF * floors + X

where ``n`` is the path-loss exponent, ``FAF`` the per-floor attenuation,
and ``X`` a log-normal shadowing term.  Shadowing is split into a static
per-link component (captured once when a testbed is synthesized, so graphs
are reproducible) and a fast per-slot fading component drawn by the
simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Thermal noise floor of a CC2420-class 802.15.4 receiver, in dBm.
DEFAULT_NOISE_FLOOR_DBM = -98.0

#: Default transmission power used in the paper's experiments, in dBm.
DEFAULT_TX_POWER_DBM = 0.0


@dataclass(frozen=True)
class LogDistancePathLoss:
    """Log-distance path loss with per-floor attenuation.

    Attributes:
        pl_d0_db: Path loss at the reference distance, in dB.
        exponent: Path-loss exponent ``n`` (2.0 free space; ~3 indoors).
        reference_distance_m: Reference distance ``d0`` in meters.
        floor_attenuation_db: Extra loss per floor crossed (FAF).
        shadowing_sigma_db: Standard deviation of log-normal shadowing.
    """

    pl_d0_db: float = 40.0
    exponent: float = 3.0
    reference_distance_m: float = 1.0
    floor_attenuation_db: float = 15.0
    shadowing_sigma_db: float = 4.0

    def __post_init__(self) -> None:
        if self.exponent <= 0:
            raise ValueError("path-loss exponent must be positive")
        if self.reference_distance_m <= 0:
            raise ValueError("reference distance must be positive")
        if self.shadowing_sigma_db < 0:
            raise ValueError("shadowing sigma must be non-negative")

    def path_loss_db(self, distance_m: float, floors_crossed: int = 0,
                     shadowing_db: float = 0.0) -> float:
        """Total path loss in dB over a link.

        Args:
            distance_m: 3-D distance between sender and receiver.
            floors_crossed: Number of building floors between them.
            shadowing_db: A pre-drawn shadowing realization in dB.
        """
        if distance_m < 0:
            raise ValueError("distance must be non-negative")
        effective = max(distance_m, self.reference_distance_m)
        return (self.pl_d0_db
                + 10.0 * self.exponent
                * math.log10(effective / self.reference_distance_m)
                + self.floor_attenuation_db * abs(floors_crossed)
                + shadowing_db)

    def received_power_dbm(self, tx_power_dbm: float, distance_m: float,
                           floors_crossed: int = 0,
                           shadowing_db: float = 0.0) -> float:
        """Received signal strength in dBm."""
        return tx_power_dbm - self.path_loss_db(
            distance_m, floors_crossed, shadowing_db)

    def draw_shadowing(self, rng: np.random.Generator,
                       shape=None) -> np.ndarray:
        """Draw log-normal shadowing realizations (in dB)."""
        return rng.normal(0.0, self.shadowing_sigma_db, size=shape)


def dbm_to_mw(dbm) -> np.ndarray:
    """Convert power in dBm to milliwatts (vectorized)."""
    return np.power(10.0, np.asarray(dbm, dtype=float) / 10.0)


def mw_to_dbm(mw) -> np.ndarray:
    """Convert power in milliwatts to dBm (vectorized).

    Zero (or negative) power maps to -inf dBm.
    """
    mw = np.asarray(mw, dtype=float)
    with np.errstate(divide="ignore"):
        return 10.0 * np.log10(np.where(mw > 0.0, mw, 0.0))


def sinr_db(signal_dbm: float, noise_dbm: float,
            interference_dbm_list=()) -> float:
    """Signal-to-interference-plus-noise ratio in dB.

    Interference powers add in the linear (mW) domain — the "cumulative
    interference" effect the paper cites as the reason to limit the number
    of concurrent transmissions per channel.
    """
    noise_mw = float(dbm_to_mw(noise_dbm))
    interference_mw = float(np.sum(dbm_to_mw(list(interference_dbm_list)))) \
        if len(list(interference_dbm_list)) else 0.0
    signal_mw = float(dbm_to_mw(signal_dbm))
    return float(mw_to_dbm(signal_mw / (noise_mw + interference_mw)))
