"""RF propagation substrate: path loss, shadowing, SINR→PRR."""

from repro.propagation.pathloss import (
    DEFAULT_NOISE_FLOOR_DBM,
    DEFAULT_TX_POWER_DBM,
    LogDistancePathLoss,
    dbm_to_mw,
    mw_to_dbm,
    sinr_db,
)
from repro.propagation.prr_model import (
    ACK_FRAME_BYTES,
    DEFAULT_FRAME_BYTES,
    PrrCurve,
    bit_error_rate,
    frame_success_probability,
    get_prr_curve,
    prr,
    prr_curve,
    sinr_for_prr,
)

__all__ = [
    "ACK_FRAME_BYTES",
    "PrrCurve",
    "get_prr_curve",
    "DEFAULT_FRAME_BYTES",
    "DEFAULT_NOISE_FLOOR_DBM",
    "DEFAULT_TX_POWER_DBM",
    "LogDistancePathLoss",
    "bit_error_rate",
    "dbm_to_mw",
    "frame_success_probability",
    "mw_to_dbm",
    "prr",
    "prr_curve",
    "sinr_db",
    "sinr_for_prr",
]
