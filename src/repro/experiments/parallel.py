"""Process-parallel trial execution for the experiment runners.

Every experiment is a bag of independent trials — a (sweep point, flow
set) pair, a reliability flow set, a detection policy — whose outcomes
are only aggregated at the end.  :func:`parallel_map` fans those trials
out over a :class:`~concurrent.futures.ProcessPoolExecutor` while
keeping three properties the runners rely on:

* **Determinism.**  Each trial derives its RNG seeds from the trial key
  alone (``seed + set_index`` style), never from "how many trials ran
  before me", so the outcome list is identical for any worker count —
  ``workers=4`` is bit-for-bit the same result as ``workers=1``.
* **Ordering.**  Results come back in task-submission order (the serial
  loop order), so downstream aggregation never sees a shuffled list.
* **Observability.**  When the parent has the :mod:`repro.obs` recorder
  enabled, each trial runs under a worker-local recorder and ships its
  metrics snapshot home; the parent folds them into its own registry via
  :meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`.  Counters
  and histograms therefore aggregate exactly as in a serial run; trace
  *events* are not shipped (the ring buffer stays per-process).

Workers receive the experiment context once, at pool start-up (not per
task), and rebuild process-local state — e.g. the
:class:`~repro.experiments.common.PreparedNetwork` cache of
:func:`trial_network` — on first use.  The parent's kernel selection
(:func:`repro.core.kernel.active_kernel`) is forwarded so a scalar-mode
run stays scalar in the workers even under the ``spawn`` start method.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core import kernel as _kernel
from repro.experiments.common import PreparedNetwork, prepare_network
from repro.obs import recorder as _obs
from repro.obs.metrics import MetricsRegistry

#: Worker-process globals installed by :func:`_init_worker`.
_WORKER: Dict[str, Any] = {}


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker-count request: ``None``/``0`` means all CPUs."""
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    return max(1, int(workers))


def trial_network(context: Dict[str, Any], *,
                  num_channels: Optional[int] = None,
                  channels: Optional[Sequence[int]] = None,
                  prr_threshold: float = 0.9) -> PreparedNetwork:
    """The trial's :class:`PreparedNetwork`, cached per process.

    Serial callers share the cache through the context dict itself
    (fresh per runner invocation); each worker process starts with an
    empty cache, so a (worker, channel-restriction) pair pays
    :func:`prepare_network` exactly once no matter how many trials it
    executes.
    """
    cache = context.setdefault("_networks", {})
    key = (num_channels,
           tuple(channels) if channels is not None else None,
           prr_threshold)
    network = cache.get(key)
    if network is None:
        network = cache[key] = prepare_network(
            context["topology"], num_channels=num_channels,
            channels=channels, prr_threshold=prr_threshold)
    return network


def _init_worker(context: Dict[str, Any], record: bool,
                 kernel: str) -> None:
    """Install the experiment context in a freshly started worker."""
    _WORKER["context"] = dict(context)
    _WORKER["record"] = record
    _kernel.set_kernel(kernel)


def _run_trial(packed) -> tuple:
    """Execute one trial in a worker, capturing its metrics delta."""
    fn, task = packed
    context = _WORKER["context"]
    if _WORKER["record"]:
        from repro import obs

        with obs.recording() as rec:
            result = fn(context, task)
        return result, rec.snapshot()
    return fn(context, task), None


def parallel_map(fn: Callable[[Dict[str, Any], Any], Any],
                 tasks: Sequence[Any], *, workers: Optional[int],
                 context: Dict[str, Any]) -> List[Any]:
    """Run ``fn(context, task)`` for every task, preserving task order.

    Args:
        fn: A module-level trial function (must be picklable by
            reference).  It receives the context dict and one task key,
            and must derive all randomness from those two alone.
        tasks: Trial keys, in the order results should come back.
        workers: Worker processes; ``None``/``0`` uses all CPUs, ``1``
            runs serially in-process (no pool, no pickling).
        context: Picklable experiment inputs shared by every trial.
            Shipped to each worker once, at pool start-up.

    Returns:
        ``[fn(context, task) for task in tasks]`` — same values, same
        order, regardless of worker count.
    """
    tasks = list(tasks)
    workers = min(resolve_workers(workers), max(len(tasks), 1))
    if workers <= 1:
        # Copy so trial_network's cache stays scoped to this invocation.
        context = dict(context)
        return [fn(context, task) for task in tasks]

    record = _obs.is_enabled()
    with ProcessPoolExecutor(
            max_workers=workers, initializer=_init_worker,
            initargs=(context, record, _kernel.active_kernel())) as pool:
        packed = list(pool.map(_run_trial, [(fn, task) for task in tasks]))

    if record:
        merged = MetricsRegistry.merge_snapshots(
            snapshot for _, snapshot in packed if snapshot is not None)
        _obs.RECORDER.registry.merge_snapshot(merged)
    return [result for result, _ in packed]
