"""Per-figure experiment runners reproducing the paper's evaluation."""

from repro.experiments.adaptation import (
    DEFAULT_ADAPTATION_POLICIES,
    format_adaptation,
    run_adaptation,
)
from repro.experiments.common import (
    POLICY_NAMES,
    PreparedNetwork,
    build_workload,
    make_policy,
    prepare_network,
    schedule_workload,
)
from repro.experiments.detection_exp import (
    DetectionOutcome,
    build_detection_flow_set,
    run_detection,
)
from repro.experiments.parallel import (
    parallel_map,
    resolve_workers,
    trial_network,
)
from repro.experiments.reliability import (
    DEFAULT_FLOW_MIX,
    RELIABILITY_CHANNELS,
    ReliabilityOutcome,
    build_reliability_flow_set,
    run_reliability,
)
from repro.experiments.schedulability import (
    SweepResult,
    TrialOutcome,
    run_sweep,
)

__all__ = [
    "DEFAULT_ADAPTATION_POLICIES",
    "DEFAULT_FLOW_MIX",
    "DetectionOutcome",
    "POLICY_NAMES",
    "PreparedNetwork",
    "RELIABILITY_CHANNELS",
    "ReliabilityOutcome",
    "SweepResult",
    "TrialOutcome",
    "build_detection_flow_set",
    "build_reliability_flow_set",
    "build_workload",
    "format_adaptation",
    "make_policy",
    "parallel_map",
    "prepare_network",
    "resolve_workers",
    "run_adaptation",
    "run_detection",
    "run_reliability",
    "run_sweep",
    "schedule_workload",
    "trial_network",
]
