"""Shared plumbing for the paper-reproduction experiments.

Every experiment follows the same shape: restrict a testbed to the
channels in use, derive the communication and reuse graphs, generate
workloads, route them, and run one or more of the NR / RA / RC
schedulers.  This module centralizes that pipeline so the per-figure
runners stay small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.nr import NoReusePolicy
from repro.core.ra import AggressiveReusePolicy, DEFAULT_RHO_T
from repro.core.rc import ConservativeReusePolicy
from repro.core.scheduler import (
    FixedPriorityScheduler,
    PlacementPolicy,
    SchedulingResult,
)
from repro.flows.flow import FlowSet
from repro.flows.generator import (
    PeriodRange,
    generate_flow_set,
    pick_access_points,
)
from repro.network.graphs import ChannelReuseGraph, CommunicationGraph
from repro.network.topology import Topology
from repro.obs.profiling import timed
from repro.routing.traffic import TrafficType, assign_routes

#: Names of the three schedulers compared throughout the paper.
POLICY_NAMES = ("NR", "RA", "RC")


@dataclass(frozen=True)
class PreparedNetwork:
    """A testbed restricted to its in-use channels, with derived graphs.

    Attributes:
        topology: The channel-restricted topology.
        communication: Communication graph (routes).
        reuse: Channel reuse graph (interference proxy).
        access_points: The two highest-degree nodes (paper's AP choice).
        prr_threshold: Link admission threshold used for the graphs.
    """

    topology: Topology
    communication: CommunicationGraph
    reuse: ChannelReuseGraph
    access_points: List[int]
    prr_threshold: float

    @property
    def num_channels(self) -> int:
        """Number of channels the network hops over."""
        return self.topology.num_channels


def prepare_network(topology: Topology, num_channels: Optional[int] = None,
                    channels: Optional[Sequence[int]] = None,
                    prr_threshold: float = 0.9) -> PreparedNetwork:
    """Restrict a topology to the channels in use and derive its graphs.

    Args:
        topology: Full testbed topology (all measured channels).
        num_channels: Use the first N channels of the topology's map.
        channels: Explicit physical channel list (overrides num_channels).
        prr_threshold: Communication-graph link admission threshold.
    """
    with timed("phase.prepare_network"):
        if channels is not None:
            restricted = topology.restrict_channels(list(channels))
        elif num_channels is not None:
            restricted = topology.restrict_channels(
                list(topology.channel_map)[:num_channels])
        else:
            restricted = topology
        communication = CommunicationGraph.from_topology(
            restricted, prr_threshold)
        reuse = ChannelReuseGraph.from_topology(restricted)
        access_points = pick_access_points(restricted, prr_threshold)
        return PreparedNetwork(
            topology=restricted, communication=communication, reuse=reuse,
            access_points=access_points, prr_threshold=prr_threshold)


def make_policy(name: str, rho_t: int = DEFAULT_RHO_T) -> PlacementPolicy:
    """Instantiate a placement policy by its paper name (NR / RA / RC)."""
    if name == "NR":
        return NoReusePolicy()
    if name == "RA":
        return AggressiveReusePolicy(rho_t=rho_t)
    if name == "RC":
        return ConservativeReusePolicy(rho_t=rho_t)
    raise ValueError(f"unknown policy: {name!r} (expected NR, RA, or RC)")


def build_workload(network: PreparedNetwork, num_flows: int,
                   period_range: PeriodRange, traffic: TrafficType,
                   rng: np.random.Generator) -> FlowSet:
    """Generate, prioritize (DM) and route one flow set.

    Raises:
        repro.routing.NoRouteError: If the network cannot route a flow
            (extremely sparse channel-restricted graphs).
    """
    with timed("phase.build_workload"):
        flow_set, access_points = generate_flow_set(
            network.topology, network.communication, num_flows, period_range,
            rng, access_points=network.access_points)
        ordered = flow_set.deadline_monotonic()
        return assign_routes(ordered, network.communication, traffic,
                             access_points)


def schedule_workload(network: PreparedNetwork, flow_set: FlowSet,
                      policy_name: str,
                      rho_t: int = DEFAULT_RHO_T) -> SchedulingResult:
    """Schedule a routed flow set with one of the three policies."""
    scheduler = FixedPriorityScheduler(
        num_nodes=network.topology.num_nodes,
        num_offsets=network.num_channels,
        reuse_graph=network.reuse,
        policy=make_policy(policy_name, rho_t))
    with timed("phase.schedule"), timed(f"phase.schedule.{policy_name}"):
        return scheduler.run(flow_set)
