"""Detection-policy experiments (paper Figures 10 and 11).

Fifty peer-to-peer flows with a 1 s period run on 4 channels (11-14).
Schedules from RA and RC are executed for six 18-repetition epochs,
first in a clean RF environment and then with WiFi interferers (one per
floor, WiFi channel 1) injecting external interference.  The detection
policy then classifies every reuse-involved link whose reuse-slot PRR
falls below PRR_t as *reject* (reuse-degraded) or *accept* (degraded by
something else).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.core.ra import DEFAULT_RHO_T
from repro.detection.classifier import (
    DetectionConfig,
    LinkDiagnosis,
    Verdict,
    diagnose_epoch,
)
from repro.detection.health import (
    EpochReport,
    SAMPLES_PER_EPOCH,
    build_epoch_reports,
)
from repro.experiments.common import (
    PreparedNetwork,
    prepare_network,
    schedule_workload,
)
from repro.experiments.parallel import parallel_map
from repro.experiments.reliability import RELIABILITY_CHANNELS
from repro.flows.flow import FlowSet
from repro.flows.generator import generate_fixed_period_flow_set
from repro.network.topology import Topology
from repro.propagation.pathloss import LogDistancePathLoss
from repro.routing.traffic import TrafficType, assign_routes
from repro.simulator.engine import SimulationConfig, TschSimulator
from repro.simulator.interference import (
    WifiInterferer,
    interferer_rssi_matrix,
    place_interferer_pairs,
)
from repro.simulator.stats import Link
from repro.testbeds.layout import FloorPlan
from repro.testbeds.synth import RadioEnvironment


@dataclass
class DetectionOutcome:
    """Detection-experiment results for one (policy, condition) pair.

    Attributes:
        policy: "RA" or "RC".
        condition: "clean" or "wifi".
        schedulable: Whether the schedule was produced at all.
        reuse_links: Links involved in channel reuse in the schedule.
        epoch_reports: Health reports per epoch.
        diagnoses: Per-epoch diagnoses of reuse-involved links.
        rejected_per_epoch: Links the policy flags as reuse-degraded.
        low_prr_links: Links under PRR_t (reuse slots) in any epoch.
    """

    policy: str
    condition: str
    schedulable: bool
    reuse_links: List[Link] = field(default_factory=list)
    epoch_reports: List[EpochReport] = field(default_factory=list)
    diagnoses: Dict[int, List[LinkDiagnosis]] = field(default_factory=dict)
    rejected_per_epoch: Dict[int, List[Link]] = field(default_factory=dict)
    low_prr_links: List[Link] = field(default_factory=list)

    def rejected_links(self) -> List[Link]:
        """Union of rejected links over all epochs."""
        links = set()
        for rejected in self.rejected_per_epoch.values():
            links.update(rejected)
        return sorted(links)

    def accepted_links(self) -> List[Link]:
        """Links classified as degraded-by-other-causes in any epoch."""
        links = set()
        for diagnoses in self.diagnoses.values():
            links.update(d.link for d in diagnoses
                         if d.verdict is Verdict.ACCEPT)
        return sorted(links)


def build_detection_flow_set(network: PreparedNetwork,
                             rng: np.random.Generator,
                             num_flows: int = 50) -> FlowSet:
    """The paper's detection workload: N p2p flows, 1 s period.

    Deadlines are drawn from ``[P/2, P]`` (the paper's general workload
    convention); the tighter deadlines are what push RC into introducing
    a small amount of channel reuse, matching the paper's observation of
    20 reuse-involved links under RC versus 95 under RA.
    """
    flow_set, access_points = generate_fixed_period_flow_set(
        network.topology, network.communication, ((1.0, num_flows),), rng,
        access_points=network.access_points, deadline_equals_period=False)
    ordered = flow_set.deadline_monotonic()
    return assign_routes(ordered, network.communication,
                         TrafficType.PEER_TO_PEER, access_points)


def _detection_trial(context: dict, policy: str) -> List[DetectionOutcome]:
    """One detection policy: schedule once, simulate every condition.

    The flow set, interferer placement, and simulation seeds are all in
    the context, so trials are independent of execution order (see
    :mod:`repro.experiments.parallel`).
    """
    network: PreparedNetwork = context["network"]
    flow_set = context["flow_set"]
    config: DetectionConfig = context["config"]
    seed = context["seed"]
    repetitions_per_epoch = context["repetitions_per_epoch"]
    total_repetitions = context["num_epochs"] * repetitions_per_epoch
    result = schedule_workload(network, flow_set, policy, context["rho_t"])
    outcomes: List[DetectionOutcome] = []
    for condition in context["conditions"]:
        if not result.schedulable:
            outcomes.append(DetectionOutcome(
                policy=policy, condition=condition, schedulable=False))
            continue
        use_wifi = condition == "wifi"
        simulator = TschSimulator(
            schedule=result.schedule, flow_set=flow_set,
            environment=context["environment"],
            channel_map=network.topology.channel_map,
            interferers=context["interferers"] if use_wifi else (),
            interferer_rssi_dbm=(context["interferer_rssi"]
                                 if use_wifi else None),
            config=SimulationConfig(seed=seed + 2000,
                                    engine=context["engine"]))
        stats = simulator.run(total_repetitions)
        reports = build_epoch_reports(stats, repetitions_per_epoch)

        outcome = DetectionOutcome(
            policy=policy, condition=condition, schedulable=True,
            reuse_links=result.schedule.reuse_links(),
            epoch_reports=reports)
        low_prr = set()
        for report in reports:
            diagnoses = diagnose_epoch(report, config)
            outcome.diagnoses[report.epoch] = diagnoses
            outcome.rejected_per_epoch[report.epoch] = [
                d.link for d in diagnoses if d.verdict is Verdict.REJECT]
            low_prr.update(
                d.link for d in diagnoses
                if d.verdict in (Verdict.REJECT, Verdict.ACCEPT))
        outcome.low_prr_links = sorted(low_prr)
        outcomes.append(outcome)
    return outcomes


def run_detection(topology: Topology, environment: RadioEnvironment,
                  plan: FloorPlan, *, num_flows: int = 80,
                  num_epochs: int = 6,
                  repetitions_per_epoch: int = SAMPLES_PER_EPOCH,
                  channels: Sequence[int] = RELIABILITY_CHANNELS,
                  policies: Sequence[str] = ("RA", "RC"),
                  conditions: Sequence[str] = ("clean", "wifi"),
                  config: DetectionConfig = DetectionConfig(),
                  rho_t: int = DEFAULT_RHO_T,
                  seed: int = 0, workers: int = 1,
                  engine: str = "auto") -> List[DetectionOutcome]:
    """Run the Figure 10/11 experiment.

    Args:
        topology: Full WUSTL-like topology.
        environment: Its ground-truth RF environment.
        plan: Building plan (interferer placement).
        num_flows: Peer-to-peer flows.  The paper uses 50 on a testbed
            whose routes are roughly twice as long as our synthetic
            WUSTL's; 80 flows applies equivalent scheduling pressure
            (matching the paper's reuse-link counts: ~137 vs the paper's
            95 for RA, ~23 vs 20 for RC).
        num_epochs: Health-report epochs (6 in the paper).
        repetitions_per_epoch: Schedule executions per epoch (18).
        channels: Physical channels in use (11-14).
        policies: Schedulers whose schedules are analyzed (RA and RC).
        conditions: "clean" and/or "wifi".
        config: Detection-policy parameters (α = 0.05, PRR_t = 0.9).
        rho_t: Reuse hop floor.
        seed: Base seed.
        workers: Worker processes to fan the per-policy trials over
            (``0`` = all CPUs).  Results are identical for any count.
        engine: Simulator engine (``slot`` / ``event`` / ``auto``) —
            engines are bit-identical, so this only trades wall time.

    Returns:
        One :class:`DetectionOutcome` per (policy, condition).
    """
    network = prepare_network(topology, channels=channels)
    rng = np.random.default_rng(seed)
    flow_set = build_detection_flow_set(network, rng, num_flows)

    interferers = place_interferer_pairs(plan)
    interferer_rssi = interferer_rssi_matrix(
        interferers, environment.positions, plan,
        LogDistancePathLoss(), np.random.default_rng(seed + 1))

    context = {
        "network": network, "environment": environment,
        "flow_set": flow_set, "interferers": interferers,
        "interferer_rssi": interferer_rssi,
        "conditions": tuple(conditions), "config": config,
        "rho_t": rho_t, "seed": seed, "num_epochs": num_epochs,
        "repetitions_per_epoch": repetitions_per_epoch, "engine": engine,
    }
    batches = parallel_map(_detection_trial, list(policies),
                           workers=workers, context=context)
    return [outcome for batch in batches for outcome in batch]
