"""Runtime-adaptation experiment: remediation policies vs. NoOp.

The Fig 8-style closing experiment of the manager runtime: run the
*same* workload under the *same* seeded fault timeline once per
remediation policy, and compare PDR epoch by epoch.  Because scenario
resolution, workload generation, and simulation seeds all derive from
the (scenario, seed) pair alone, every policy faces bit-identical
conditions — the PDR curves differ only through the actions taken.

Under the ``reuse-storm`` preset the expected shape is: all curves drop
together when the fault lands; NoOp stays down; ``reschedule`` climbs
back as victims are barred from shared cells; ``escalate`` recovers in
one or two big steps (each ρ_t bump strips most reuse).  Under
``wifi-burst`` the ordering flips — rescheduling cannot help with
reuse-independent interference, while ``blacklist`` removes the
polluted channel.

No plotting dependency: :func:`format_adaptation` renders the
comparison as an ASCII table + bar chart for the terminal, and the raw
:class:`~repro.manager.loop.ManagerReport` s serialize to JSON for
external tooling.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Sequence, Union

from repro.experiments.parallel import parallel_map
from repro.manager.faults import ConditionSchedule
from repro.manager.loop import ManagerConfig, ManagerReport, NetworkManager
from repro.network.topology import Topology
from repro.testbeds.layout import FloorPlan
from repro.testbeds.synth import RadioEnvironment

#: Policies compared by default (NoOp is the baseline).
DEFAULT_ADAPTATION_POLICIES = ("noop", "reschedule", "blacklist", "escalate")


def _adaptation_trial(context: Dict[str, Any], policy: str) -> ManagerReport:
    """One manager run for one policy (the parallel_map trial).

    All randomness derives from the shared config's (scenario, seed);
    the policy name only changes which actions are taken.  Each arm
    records its time series under a ``<policy>/`` prefix so the
    per-policy SLO and PDR series stay distinguishable when the study
    runs in-process under one store.
    """
    config: ManagerConfig = replace(context["config"], policy=policy,
                                    series_prefix=f"{policy}/")
    manager = NetworkManager(context["topology"], context["environment"],
                             context["plan"], config)
    return manager.run()


def run_adaptation(topology: Topology, environment: RadioEnvironment,
                   plan: FloorPlan, *,
                   scenario: Union[str, ConditionSchedule] = "reuse-storm",
                   policies: Sequence[str] = DEFAULT_ADAPTATION_POLICIES,
                   config: ManagerConfig = ManagerConfig(),
                   workers: int = 1) -> List[ManagerReport]:
    """Run the manage loop once per remediation policy, same fault timeline.

    Args:
        topology: Full testbed topology.
        environment: Its RF environment.
        plan: Building geometry (fault interferer placement).
        scenario: Fault timeline shared by every policy run.
        policies: Remediation policies to compare.
        config: Base run parameters (``policy`` and ``scenario`` fields
            are overridden per trial / by ``scenario``).
        workers: Worker processes for the per-policy fan-out
            (``0`` = all CPUs).  Results are identical for any count.

    Returns:
        One :class:`ManagerReport` per policy, in ``policies`` order.
    """
    base = replace(config, scenario=scenario)
    context = {"topology": topology, "environment": environment,
               "plan": plan, "config": base}
    return parallel_map(_adaptation_trial, list(policies), workers=workers,
                        context=context)


def format_adaptation(reports: Sequence[ManagerReport],
                      metric: str = "median") -> str:
    """Render the policy comparison as an ASCII table + bar chart.

    Args:
        reports: One report per policy (same scenario and epoch count).
        metric: ``"median"`` or ``"worst"`` per-flow PDR.
    """
    if not reports:
        return "(no reports)"
    series = {
        report.policy: (report.median_pdr_series() if metric == "median"
                        else report.worst_pdr_series())
        for report in reports
    }
    conditions = [outcome.conditions for outcome in reports[0].epochs]
    actions = {report.policy: dict(report.actions_taken())
               for report in reports}
    num_epochs = len(conditions)
    names = [report.policy for report in reports]
    width = max(8, max(len(name) for name in names) + 2)

    lines = [f"{metric} PDR per epoch — scenario '{reports[0].scenario}' "
             f"({reports[0].scheduler_policy} schedules, "
             f"seed {reports[0].seed})"]
    header = "epoch  conditions" + " " * 14 + "".join(f"{n:>{width}}"
                                                      for n in names)
    lines.append(header)
    for epoch in range(num_epochs):
        row = f"{epoch:>5}  {conditions[epoch]:<24}"
        row += "".join(f"{series[name][epoch]:>{width}.3f}"
                       for name in names)
        lines.append(row)
        marks = [f"{name}: {actions[name][epoch]}"
                 for name in names if epoch in actions[name]]
        if marks:
            lines.append(" " * 7 + "* " + "; ".join(marks))

    # Pure-ASCII trend strip: one character per epoch, ' ' (collapsed)
    # through '@' (perfect), so recovery is visible at a glance.
    scale = " .:-=+*#%@"
    lines.append("")
    lines.append("trend (one char/epoch, ' '=0.0 … '@'=1.0):")
    for name in names:
        values = series[name]
        strip = "".join(scale[min(len(scale) - 1,
                                  int(v * (len(scale) - 1) + 0.5))]
                        for v in values)
        tail = values[-1] if values else 0.0
        lines.append(f"{name:>18}  [{strip}]  final={tail:.3f}")
    return "\n".join(lines)
