"""Schedulable-ratio sweeps (paper Figures 1, 2, 3) and timing (Figure 6).

A sweep varies either the number of channels or the number of flows,
generates ``num_flow_sets`` random workloads per point, schedules each
with NR, RA, and RC, and reports the fraction of schedulable flow sets
per policy, plus the reuse statistics (Figures 4, 5) and execution times
(Figure 6) harvested from the same runs.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.metrics import (
    reuse_hop_distribution,
    tx_per_cell_distribution,
)
from repro.core.ra import DEFAULT_RHO_T
from repro.experiments.common import (
    POLICY_NAMES,
    build_workload,
    schedule_workload,
)
from repro.experiments.parallel import parallel_map, trial_network
from repro.flows.generator import PeriodRange
from repro.network.topology import Topology
from repro.routing.shortest_path import NoRouteError
from repro.routing.traffic import TrafficType


@dataclass
class TrialOutcome:
    """One (sweep point, flow set, policy) scheduling run.

    Histograms are only populated for schedulable runs (the paper's reuse
    statistics come from complete schedules).
    """

    x: int
    set_index: int
    policy: str
    schedulable: bool
    elapsed_s: float
    tx_hist: Dict[int, int] = field(default_factory=dict)
    hop_hist: Dict[int, int] = field(default_factory=dict)


@dataclass
class SweepResult:
    """All trial outcomes of one sweep, with aggregation helpers."""

    vary: str
    values: List[int]
    policies: Tuple[str, ...]
    outcomes: List[TrialOutcome]

    def schedulable_ratios(self) -> Dict[str, Dict[int, float]]:
        """``{policy: {x: fraction of schedulable flow sets}}``."""
        totals: Dict[Tuple[str, int], int] = defaultdict(int)
        successes: Dict[Tuple[str, int], int] = defaultdict(int)
        for outcome in self.outcomes:
            key = (outcome.policy, outcome.x)
            totals[key] += 1
            if outcome.schedulable:
                successes[key] += 1
        ratios: Dict[str, Dict[int, float]] = {p: {} for p in self.policies}
        for (policy, x), total in totals.items():
            ratios[policy][x] = successes[(policy, x)] / total
        return ratios

    def mean_times_ms(self) -> Dict[str, Dict[int, float]]:
        """Mean scheduler execution time in milliseconds per point."""
        sums: Dict[Tuple[str, int], float] = defaultdict(float)
        counts: Dict[Tuple[str, int], int] = defaultdict(int)
        for outcome in self.outcomes:
            key = (outcome.policy, outcome.x)
            sums[key] += outcome.elapsed_s
            counts[key] += 1
        times: Dict[str, Dict[int, float]] = {p: {} for p in self.policies}
        for (policy, x), total in sums.items():
            times[policy][x] = 1000.0 * total / counts[(policy, x)]
        return times

    def tx_per_cell_fractions(self, policy: str,
                              x: Optional[int] = None) -> Dict[int, float]:
        """Pooled Tx/channel histogram (fractions) for a policy (Fig. 4)."""
        total: Counter = Counter()
        for outcome in self.outcomes:
            if outcome.policy != policy:
                continue
            if x is not None and outcome.x != x:
                continue
            total.update(outcome.tx_hist)
        count = sum(total.values())
        if count == 0:
            return {}
        return {k: v / count for k, v in sorted(total.items())}

    def reuse_hop_fractions(self, policy: str,
                            x: Optional[int] = None) -> Dict[int, float]:
        """Pooled reuse hop-count histogram (fractions) (Fig. 5)."""
        total: Counter = Counter()
        for outcome in self.outcomes:
            if outcome.policy != policy:
                continue
            if x is not None and outcome.x != x:
                continue
            total.update(outcome.hop_hist)
        count = sum(total.values())
        if count == 0:
            return {}
        return {k: v / count for k, v in sorted(total.items())}


def _sweep_trial(context: dict, task: Tuple[int, int]) -> List[TrialOutcome]:
    """One (sweep point, flow set) trial: workload + every policy.

    All randomness derives from ``seed + set_index``, so trials are
    independent of execution order and worker placement (see
    :mod:`repro.experiments.parallel`).
    """
    x, set_index = task
    vary = context["vary"]
    num_channels = x if vary == "channels" else context["fixed_channels"]
    num_flows = x if vary == "flows" else context["fixed_flows"]
    network = trial_network(context, num_channels=num_channels)
    policies = context["policies"]
    rng = np.random.default_rng(context["seed"] + set_index)
    try:
        flow_set = build_workload(network, num_flows,
                                  context["period_range"],
                                  context["traffic"], rng)
    except NoRouteError:
        # The restricted graph cannot carry this workload at all;
        # count it against every policy equally.
        return [TrialOutcome(x=x, set_index=set_index, policy=policy,
                             schedulable=False, elapsed_s=0.0)
                for policy in policies]
    outcomes: List[TrialOutcome] = []
    for policy in policies:
        result = schedule_workload(network, flow_set, policy,
                                   context["rho_t"])
        outcome = TrialOutcome(
            x=x, set_index=set_index, policy=policy,
            schedulable=result.schedulable,
            elapsed_s=result.elapsed_s)
        if result.schedulable and context["collect_histograms"]:
            outcome.tx_hist = tx_per_cell_distribution(result.schedule)
            outcome.hop_hist = reuse_hop_distribution(
                result.schedule, network.reuse)
        outcomes.append(outcome)
    return outcomes


def run_sweep(topology: Topology, traffic: TrafficType, vary: str,
              values: Sequence[int], *, fixed_channels: int = 5,
              fixed_flows: int = 30,
              period_range: PeriodRange = PeriodRange(0, 4),
              num_flow_sets: int = 100, seed: int = 0,
              policies: Sequence[str] = POLICY_NAMES,
              rho_t: int = DEFAULT_RHO_T,
              collect_histograms: bool = True,
              workers: int = 1) -> SweepResult:
    """Run one schedulable-ratio sweep.

    Args:
        topology: Full testbed topology (all 16 channels).
        traffic: Centralized or peer-to-peer routing.
        vary: ``"channels"`` or ``"flows"`` — the swept dimension.
        values: Sweep points (channel counts or flow counts).
        fixed_channels: Channel count when varying flows.
        fixed_flows: Flow count when varying channels.
        period_range: Harmonic period range of the workloads.
        num_flow_sets: Random flow sets per sweep point (100 in paper).
        seed: Base seed; flow set k at every sweep point uses seed+k so
            points are compared on matched workload randomness.
        policies: Which schedulers to run.
        rho_t: Reuse hop-count floor for RA and RC.
        collect_histograms: Harvest Tx/channel and reuse-hop histograms
            from schedulable runs (Figures 4-5).
        workers: Worker processes to fan the (sweep point, flow set)
            trials over (``0`` = all CPUs).  Results are identical for
            any worker count.

    Returns:
        A :class:`SweepResult`.
    """
    if vary not in ("channels", "flows"):
        raise ValueError("vary must be 'channels' or 'flows'")

    context = {
        "topology": topology, "traffic": traffic, "vary": vary,
        "fixed_channels": fixed_channels, "fixed_flows": fixed_flows,
        "period_range": period_range, "seed": seed,
        "policies": tuple(policies), "rho_t": rho_t,
        "collect_histograms": collect_histograms,
    }
    tasks = [(x, set_index) for x in values
             for set_index in range(num_flow_sets)]
    batches = parallel_map(_sweep_trial, tasks, workers=workers,
                           context=context)
    outcomes = [outcome for batch in batches for outcome in batch]
    return SweepResult(vary=vary, values=list(values),
                       policies=tuple(policies), outcomes=outcomes)
