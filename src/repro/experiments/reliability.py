"""Network reliability experiments (paper Figures 8 and 9).

Five distinct flow sets of 50 peer-to-peer flows — half releasing every
2^-1 s, half every 2^0 s — are scheduled by NR, RA, and RC on a 4-channel
WUSTL-like network (channels 11-14, 0 dBm) and each schedule is executed
100 times in the SINR-based simulator.  The paper's observations to
reproduce: median PDR of RC within ~1% of NR, RA's median within ~2%,
but RA's *worst-case* PDR collapsing by tens of percent while RC stays
within a few percent of NR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.metrics import BoxStats, tx_per_cell_distribution
from repro.core.ra import DEFAULT_RHO_T
from repro.experiments.common import (
    POLICY_NAMES,
    PreparedNetwork,
    prepare_network,
    schedule_workload,
)
from repro.experiments.parallel import parallel_map
from repro.flows.flow import FlowSet
from repro.flows.generator import generate_fixed_period_flow_set
from repro.network.topology import Topology
from repro.routing.traffic import TrafficType, assign_routes
from repro.simulator.engine import SimulationConfig, TschSimulator
from repro.simulator.stats import SimulationStats
from repro.testbeds.synth import RadioEnvironment

#: Channels used in the paper's WUSTL reliability runs.
RELIABILITY_CHANNELS = (11, 12, 13, 14)

#: The paper's flow mix: 25 flows at 0.5 s, 25 flows at 1 s.
DEFAULT_FLOW_MIX = ((0.5, 25), (1.0, 25))


@dataclass
class ReliabilityOutcome:
    """Results for one (flow set, policy) pair."""

    set_index: int
    policy: str
    schedulable: bool
    pdr_box: Optional[BoxStats] = None
    median_pdr: Optional[float] = None
    worst_pdr: Optional[float] = None
    tx_hist: Dict[int, int] = field(default_factory=dict)
    stats: Optional[SimulationStats] = None


def build_reliability_flow_set(network: PreparedNetwork,
                               rng: np.random.Generator,
                               flow_mix: Sequence[Tuple[float, int]] =
                               DEFAULT_FLOW_MIX) -> FlowSet:
    """One reliability flow set: fixed period mix, DM order, p2p routes."""
    flow_set, access_points = generate_fixed_period_flow_set(
        network.topology, network.communication, flow_mix, rng,
        access_points=network.access_points)
    ordered = flow_set.deadline_monotonic()
    return assign_routes(ordered, network.communication,
                         TrafficType.PEER_TO_PEER, access_points)


def _schedulable_flow_set(network: PreparedNetwork,
                          flow_mix: Sequence[Tuple[float, int]],
                          policies: Sequence[str], rho_t: int, seed: int,
                          max_attempts: int = 25):
    """Draw a flow set every policy can schedule (as in the paper's setup).

    The paper reports PDRs of all three schedulers on the same five flow
    sets, which presupposes every set is schedulable even without channel
    reuse.  We resample (deterministically, seed + 10000·attempt) until
    that holds; if no attempt succeeds the last draw is returned and the
    per-policy results record the failures.
    """
    flow_set = None
    results = {}
    for attempt in range(max_attempts):
        rng = np.random.default_rng(seed + 10000 * attempt)
        flow_set = build_reliability_flow_set(network, rng, flow_mix)
        results = {policy: schedule_workload(network, flow_set, policy, rho_t)
                   for policy in policies}
        if all(r.schedulable for r in results.values()):
            break
    return flow_set, results


def _reliability_trial(context: dict,
                       set_index: int) -> List[ReliabilityOutcome]:
    """One reliability flow set: draw, schedule, and simulate.

    Seeds derive from ``seed + set_index`` only, keeping trials
    independent of execution order (see
    :mod:`repro.experiments.parallel`).
    """
    network: PreparedNetwork = context["network"]
    environment: RadioEnvironment = context["environment"]
    policies = context["policies"]
    seed = context["seed"]
    flow_set, results = _schedulable_flow_set(
        network, context["flow_mix"], policies, context["rho_t"],
        seed + set_index)
    outcomes: List[ReliabilityOutcome] = []
    for policy in policies:
        result = results[policy]
        outcome = ReliabilityOutcome(
            set_index=set_index, policy=policy,
            schedulable=result.schedulable)
        if result.schedulable:
            simulator = TschSimulator(
                schedule=result.schedule, flow_set=flow_set,
                environment=environment,
                channel_map=network.topology.channel_map,
                config=SimulationConfig(seed=seed + 1000 + set_index,
                                        engine=context["engine"]))
            stats = simulator.run(context["repetitions"])
            pdrs = stats.pdr_values()
            outcome.pdr_box = BoxStats.from_values(pdrs)
            outcome.median_pdr = stats.median_pdr()
            outcome.worst_pdr = stats.worst_pdr()
            outcome.tx_hist = tx_per_cell_distribution(result.schedule)
            if context["keep_stats"]:
                outcome.stats = stats
        outcomes.append(outcome)
    return outcomes


def run_reliability(topology: Topology, environment: RadioEnvironment,
                    *, num_flow_sets: int = 5, repetitions: int = 100,
                    channels: Sequence[int] = RELIABILITY_CHANNELS,
                    flow_mix: Sequence[Tuple[float, int]] = DEFAULT_FLOW_MIX,
                    policies: Sequence[str] = POLICY_NAMES,
                    rho_t: int = DEFAULT_RHO_T, seed: int = 0,
                    keep_stats: bool = False,
                    workers: int = 1,
                    engine: str = "auto") -> List[ReliabilityOutcome]:
    """Run the Figure 8/9 experiment.

    Args:
        topology: Full WUSTL-like topology (16 channels).
        environment: Its ground-truth RF environment.
        num_flow_sets: Distinct random flow sets (5 in the paper).
        repetitions: Schedule executions per flow set (100 in the paper).
        channels: Physical channels in use.
        flow_mix: ``(period_seconds, count)`` composition per flow set.
        policies: Schedulers to compare.
        rho_t: Reuse hop floor for RA / RC.
        seed: Base seed (flow set k uses seed + k).
        keep_stats: Attach the full SimulationStats to each outcome
            (memory-heavy; used by the detection experiments and tests).
        workers: Worker processes to fan the flow-set trials over
            (``0`` = all CPUs).  Results are identical for any count.
        engine: Simulator engine (``slot`` / ``event`` / ``auto``) —
            engines are bit-identical, so this only trades wall time.

    Returns:
        One :class:`ReliabilityOutcome` per (flow set, policy).
    """
    network = prepare_network(topology, channels=channels)
    context = {
        "network": network, "environment": environment,
        "flow_mix": tuple(flow_mix), "policies": tuple(policies),
        "rho_t": rho_t, "seed": seed, "repetitions": repetitions,
        "keep_stats": keep_stats, "engine": engine,
    }
    batches = parallel_map(_reliability_trial, list(range(num_flow_sets)),
                           workers=workers, context=context)
    return [outcome for batch in batches for outcome in batch]
