"""Compiled-topology artifact cache, keyed by canonical config hashes.

Scheduling a network touches three expensive artifacts, each strictly
contained in the next request that needs it:

* ``topology`` — the prepared network: channel-restricted topology,
  communication graph, and the channel-reuse graph whose precomputed
  hop matrix (``effective_hops``) backs every reuse-distance query the
  placement kernel makes;
* ``workload`` — the generated, deadline-monotonic, routed flow set;
* ``schedule`` — the compiled superframe (the full
  :class:`~repro.core.scheduler.SchedulingResult`), whose schedule also
  carries the kernel's warm incremental distance lanes — the state the
  reschedule repair path warm-starts from.

Entries are *content-addressed* by the run ledger's canonical
:func:`repro.obs.ledger.config_hash` over the defining fields (see
:meth:`repro.service.protocol.NetworkConfig.topology_hash` and
friends), so networks that share a testbed share the prepared topology
while keeping distinct workloads, and a repeated request is a pure
lookup.  Any config field change changes the hash — there is no
stale-entry hazard, only a miss — and when a *network name* re-binds to
a different hash the old session is dropped and counted as an
invalidation.

The cache is per-worker (workers are separate processes; shared memory
would buy contention, not wins, since a network's requests all land on
one worker anyway) and LRU-bounded.  Hit / miss / eviction /
invalidation counters reconcile with request counts by construction:
every lookup increments exactly one of hits or misses.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

#: Artifact kinds, in build-dependency order.
KINDS = ("topology", "workload", "schedule")

#: Default per-worker capacity (entries across all kinds).  Sized for
#: a few dozen concurrently-active networks per worker; the LRU policy
#: keeps a hot fleet resident and lets one-off explorations age out.
DEFAULT_CAPACITY = 256


class ArtifactCache:
    """Bounded LRU cache of compiled artifacts with per-kind counters.

    Args:
        capacity: Maximum resident entries (all kinds pooled; least
            recently *used* evicted first).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[str, str], object]" = \
            OrderedDict()
        self.hits: Dict[str, int] = {kind: 0 for kind in KINDS}
        self.misses: Dict[str, int] = {kind: 0 for kind in KINDS}
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, kind: str, key: str):
        """The cached artifact, or None (counts the hit / miss)."""
        entry = self._entries.get((kind, key))
        if entry is None:
            self.misses[kind] = self.misses.get(kind, 0) + 1
            return None
        self._entries.move_to_end((kind, key))
        self.hits[kind] = self.hits.get(kind, 0) + 1
        return entry

    def put(self, kind: str, key: str, value) -> None:
        """Insert (or refresh) an artifact, evicting LRU entries."""
        self._entries[(kind, key)] = value
        self._entries.move_to_end((kind, key))
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def get_or_build(self, kind: str, key: str,
                     build: Callable[[], object]):
        """Lookup, falling back to ``build()`` + insert on a miss.

        Returns:
            ``(value, "hit" | "miss")`` — callers thread the verdict
            into per-request cache diagnostics.
        """
        value = self.get(kind, key)
        if value is not None:
            return value, "hit"
        value = build()
        self.put(kind, key, value)
        return value, "miss"

    def invalidate(self, kind: Optional[str] = None,
                   key: Optional[str] = None) -> int:
        """Drop entries (all, one kind, or one exact artifact).

        Returns:
            The number of entries dropped (also added to
            :attr:`invalidations`).
        """
        if kind is not None and key is not None:
            dropped = 1 if self._entries.pop((kind, key), None) else 0
        else:
            doomed = [entry_key for entry_key in self._entries
                      if kind is None or entry_key[0] == kind]
            for entry_key in doomed:
                del self._entries[entry_key]
            dropped = len(doomed)
        self.invalidations += dropped
        return dropped

    def stats(self) -> Dict:
        """JSON-ready counter snapshot (hits/misses reconcile with the
        lookups the executor performed — exactly one count per lookup)."""
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": dict(self.hits),
            "misses": dict(self.misses),
            "hit_total": sum(self.hits.values()),
            "miss_total": sum(self.misses.values()),
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }
