"""Request execution against the artifact cache and per-network sessions.

:class:`ServiceExecutor` is the service's brain, deliberately free of
any I/O or process machinery: the worker processes drive one instance
each over a pipe, tests drive it in-process, and the load generator's
``--verify`` mode drives a *shadow* instance with the same request
stream to prove the service's responses bit-identical to direct library
calls — because this class IS the direct library call path
(:func:`repro.experiments.common.prepare_network` /
:func:`~repro.experiments.common.build_workload` /
:func:`~repro.experiments.common.schedule_workload`), plus a cache in
front and a session behind.

Semantics per verb:

* ``schedule`` — (re)compile the network from its config.  All three
  artifact layers consult the cache; the session (current schedule,
  barred links, counters) resets to the pristine compiled result.  A
  network name re-binding to a different config hash drops the old
  session and invalidates its compiled-schedule artifact.
* ``reschedule`` — evolve the session: bar the victim links (explicit
  pairs, or ``"auto"`` = the smallest not-yet-barred link occupying a
  shared cell) and route the change through the PR 7 incremental repair
  path (:func:`repro.core.repair.repair_schedule`) against the warm
  schedule; on repair failure fall back to the audited-path full
  rebuild under a :class:`repro.core.reschedule.ReuseBarrierPolicy`.
  A rebuild that still fails keeps the previous schedule live
  (manager-style rollback) and reports ``schedulable: false``.
* ``explain`` — the offline Section V-A constraint chain for one
  link × slot of the session's *current* schedule.
* ``simulate`` — Monte-Carlo execute the session's *current* schedule
  in the SINR simulator (slot / event / auto engine per request; the
  engines are bit-identical, so the knob only trades wall time) and
  return the PDR summary plus per-channel PRR.  The ground-truth
  :class:`~repro.testbeds.synth.RadioEnvironment` is a fourth cached
  artifact kind, keyed like the topology.
* ``status`` — request, session, and cache counters.

Every handled request is obs-visible when recording is enabled: a
``service.requests`` counter per verb, a ``service_request`` trace
event carrying wall time and cache verdicts, per-kind cache lookup
counters, and — when a provenance recorder is attached — the
``[first, last)`` decision-id bracket of the placements the request
caused, manager-epoch style.  When the recorder also carries a span
layer and a request span is open (the worker loop), every expensive
phase — cache lookups, compile, repair, rebuild, simulate — runs
inside a named :func:`repro.obs.spans.stage`, which is what the
``repro trace show`` waterfalls decompose latency into.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.repair import ChangeSet, repair_schedule
from repro.core.reschedule import ReuseBarrierPolicy
from repro.core.schedule import Schedule
from repro.core.scheduler import FixedPriorityScheduler, SchedulingResult
from repro.experiments.common import (
    PreparedNetwork,
    build_workload,
    make_policy,
    prepare_network,
    schedule_workload,
)
from repro.flows.flow import FlowSet
from repro.flows.generator import PeriodRange
from repro.obs import recorder as _obs
from repro.obs.spans import stage
from repro.routing.traffic import TrafficType
from repro.service.cache import ArtifactCache, DEFAULT_CAPACITY
from repro.service.protocol import NetworkConfig, Request
from repro.io import schedule_to_dict

Link = Tuple[int, int]


class ServiceError(ValueError):
    """A request the executor must refuse (unknown network, bad state).

    Distinct from :class:`repro.service.protocol.ProtocolError`: the
    request was well-formed, the *state* it addressed was not there."""


@dataclass
class NetworkSession:
    """Mutable per-network serving state (lives on the owning shard)."""

    network: str
    config: NetworkConfig
    config_hash: str
    prepared: PreparedNetwork
    flow_set: FlowSet
    schedule: Schedule
    schedulable: bool
    barred: Set[Link] = field(default_factory=set)
    reschedules: int = 0
    repairs: int = 0
    fallbacks: int = 0

    def summary(self) -> Dict:
        return {"config_hash": self.config_hash,
                "schedulable": self.schedulable,
                "barred_links": len(self.barred),
                "reschedules": self.reschedules,
                "repairs": self.repairs,
                "fallbacks": self.fallbacks}


def build_prepared(config: NetworkConfig) -> PreparedNetwork:
    """The uncached topology artifact for a config."""
    from repro.testbeds import make_indriya, make_wustl

    factory = {"indriya": make_indriya, "wustl": make_wustl}[config.testbed]
    topology, _ = factory(config.seed)
    return prepare_network(topology, num_channels=config.channels)


def build_environment(config: NetworkConfig):
    """The uncached RF-environment artifact for a config.

    Re-runs the testbed factory and keeps the environment this time;
    synthesis is deterministic in ``config.seed``, so the pair matches
    the :func:`build_prepared` topology exactly.  Cached under the same
    key as the topology (both depend only on testbed/seed/channels).
    """
    from repro.testbeds import make_indriya, make_wustl

    factory = {"indriya": make_indriya, "wustl": make_wustl}[config.testbed]
    _, environment = factory(config.seed)
    return environment


def build_flow_set(config: NetworkConfig,
                   prepared: PreparedNetwork) -> FlowSet:
    """The uncached workload artifact for a config."""
    traffic = (TrafficType.CENTRALIZED if config.traffic == "centralized"
               else TrafficType.PEER_TO_PEER)
    rng = np.random.default_rng(config.effective_workload_seed)
    return build_workload(
        prepared, config.flows,
        PeriodRange(config.period_min_exp, config.period_max_exp),
        traffic, rng)


def direct_schedule(config: NetworkConfig) -> SchedulingResult:
    """One network's schedule via direct library calls, no cache.

    The reference the service's responses must be bit-identical to;
    tests and ``repro loadgen --verify`` compare against its
    :meth:`~repro.core.schedule.Schedule.canonical_hash`.
    """
    prepared = build_prepared(config)
    flow_set = build_flow_set(config, prepared)
    return schedule_workload(prepared, flow_set, config.policy,
                             rho_t=config.rho_t)


def _note_cache(kind: str, verdict: str) -> None:
    """Per-kind cache lookup counter (``service.cache.<kind>.<verdict>``).

    The :class:`~repro.service.cache.ArtifactCache` keeps its own stats
    dict for ``status`` payloads; these recorder counters are what the
    OpenMetrics export sees (as the labeled
    ``repro_service_cache_lookups_total`` family)."""
    if _obs.ENABLED:
        _obs.RECORDER.count(f"service.cache.{kind}.{verdict}")


def _auto_victim(schedule: Schedule, barred: Set[Link]) -> Optional[Link]:
    """Smallest not-yet-barred link occupying any shared cell."""
    links = set()
    for _, _, transmissions in schedule.reused_cells():
        for entry in transmissions:
            links.add(tuple(sorted(entry.request.link)))
    links -= {tuple(sorted(link)) for link in barred}
    return min(links) if links else None


class ServiceExecutor:
    """Executes worker verbs against one shard's cache and sessions.

    Args:
        cache_capacity: LRU bound of the artifact cache.
        worker_index: Shard identity, echoed in status payloads.
    """

    def __init__(self, cache_capacity: int = DEFAULT_CAPACITY,
                 worker_index: int = 0):
        self.cache = ArtifactCache(cache_capacity)
        self.sessions: Dict[str, NetworkSession] = {}
        self.worker_index = worker_index
        self.requests: Dict[str, int] = {}
        self.errors = 0
        #: Lifetime repair-fallback count.  Session counters reset when
        #: a network recompiles; this one never does.
        self.fallbacks = 0
        self.started = time.time()

    # -- dispatch --------------------------------------------------------

    def handle(self, request: Request) -> Dict:
        """Execute one verb, returning the response ``result`` payload.

        Raises:
            ServiceError: For state errors the client can act on.
        """
        start = time.perf_counter()
        self.requests[request.verb] = self.requests.get(request.verb, 0) + 1
        recorder = _obs.RECORDER if _obs.ENABLED else None
        prov = recorder.provenance if recorder is not None else None
        first_decision = prov.next_id() if prov is not None else 0
        try:
            if request.verb == "schedule":
                result = self._schedule(request)
            elif request.verb == "reschedule":
                result = self._reschedule(request)
            elif request.verb == "explain":
                result = self._explain(request)
            elif request.verb == "simulate":
                result = self._simulate(request)
            elif request.verb == "status":
                result = self.status()
            else:
                raise ServiceError(f"executor cannot serve verb "
                                   f"{request.verb!r}")
        except Exception:
            self.errors += 1
            if recorder is not None:
                recorder.count("service.errors")
            raise
        elapsed_ms = (time.perf_counter() - start) * 1e3
        result["elapsed_ms"] = round(elapsed_ms, 3)
        if recorder is not None:
            recorder.count("service.requests")
            recorder.count(f"service.requests.{request.verb}")
            fields = dict(verb=request.verb, network=request.network,
                          wall_ms=round(elapsed_ms, 3),
                          worker=self.worker_index)
            cache_info = result.get("cache")
            if cache_info:
                fields["cache"] = cache_info
            if prov is not None and prov.next_id() > first_decision:
                # Manager-epoch-style provenance bracket: the half-open
                # decision-id range this request's placements occupy.
                fields["prov"] = [first_decision, prov.next_id()]
            recorder.event("service_request", **fields)
        return result

    # -- verbs -----------------------------------------------------------

    def _schedule(self, request: Request) -> Dict:
        config = request.config
        cache_info: Dict[str, str] = {}

        with stage("cache.topology") as sp:
            prepared, cache_info["topology"] = self.cache.get_or_build(
                "topology", config.topology_hash(),
                lambda: build_prepared(config))
            if sp is not None:
                sp.annotate(verdict=cache_info["topology"])
        _note_cache("topology", cache_info["topology"])
        with stage("cache.workload") as sp:
            flow_set, cache_info["workload"] = self.cache.get_or_build(
                "workload", config.workload_hash(),
                lambda: build_flow_set(config, prepared))
            if sp is not None:
                sp.annotate(verdict=cache_info["workload"])
        _note_cache("workload", cache_info["workload"])
        with stage("compile") as sp:
            result, cache_info["schedule"] = self.cache.get_or_build(
                "schedule", config.schedule_hash(),
                lambda: schedule_workload(prepared, flow_set,
                                          config.policy,
                                          rho_t=config.rho_t))
            if sp is not None:
                sp.annotate(verdict=cache_info["schedule"],
                            placements=len(result.schedule))
        _note_cache("schedule", cache_info["schedule"])

        previous = self.sessions.get(request.network)
        if previous is not None \
                and previous.config_hash != config.schedule_hash():
            # The network name re-bound to a different configuration:
            # its old compiled superframe can never be asked for again
            # under this name — drop it rather than waiting for LRU.
            self.cache.invalidate("schedule", previous.config_hash)
        self.sessions[request.network] = NetworkSession(
            network=request.network, config=config,
            config_hash=config.schedule_hash(), prepared=prepared,
            flow_set=flow_set, schedule=result.schedule,
            schedulable=result.schedulable)

        payload = {
            "schedulable": result.schedulable,
            "policy": result.policy_name,
            "placements": len(result.schedule),
            "reuse_cells": result.schedule.num_reused_cells(),
            "makespan": result.schedule.makespan(),
            "schedule_hash": result.schedule.canonical_hash(),
            "config_hash": config.schedule_hash(),
            "cache": cache_info,
        }
        if not result.schedulable:
            payload["failed_flow"] = result.failed_flow
            payload["failed_instance"] = result.failed_instance
        if request.include_schedule:
            payload["schedule"] = schedule_to_dict(result.schedule)
        return payload

    def _session(self, request: Request) -> NetworkSession:
        session = self.sessions.get(request.network)
        if session is None:
            raise ServiceError(
                f"network {request.network!r} has no schedule yet "
                f"(send a 'schedule' request first)")
        return session

    def _reschedule(self, request: Request) -> Dict:
        session = self._session(request)
        session.reschedules += 1
        config = session.config
        if request.victims == "auto" or request.victims is None:
            victim = _auto_victim(session.schedule, session.barred)
            victims: List[Link] = [victim] if victim is not None else []
        else:
            victims = [tuple(sorted(link)) for link in request.victims]
            victims = sorted(set(victims) -
                             {tuple(sorted(l)) for l in session.barred})
        if not victims:
            return {"repair_mode": "noop", "schedulable":
                    session.schedulable, "victims": [],
                    "schedule_hash": session.schedule.canonical_hash(),
                    "barred_links": len(session.barred)}

        rho_t = math.inf if config.policy == "NR" else config.rho_t
        with stage("repair") as sp:
            outcome = repair_schedule(
                session.schedule, session.flow_set,
                session.prepared.reuse,
                ChangeSet(victims=tuple(victims)), rho_t=rho_t,
                barred=sorted(session.barred),
                policy_name=config.policy)
            if sp is not None:
                sp.annotate(victims=len(victims),
                            repaired=outcome.schedulable,
                            evicted=getattr(outcome, "evicted", None))
        payload: Dict = {"victims": [list(v) for v in victims]}
        if outcome.schedulable:
            session.schedule = outcome.schedule
            session.schedulable = True
            session.repairs += 1
            payload.update(repair_mode="repair", schedulable=True,
                           evicted_cells=outcome.evicted)
        else:
            # Repair could not re-place its blast radius: audited-path
            # fallback — full rebuild with every barred link (old and
            # new) held out of shared cells.
            session.fallbacks += 1
            self.fallbacks += 1
            if _obs.ENABLED:
                _obs.RECORDER.count("service.repair_fallbacks")
            all_barred = set(session.barred) | set(victims)
            with stage("rebuild") as sp:
                barrier = ReuseBarrierPolicy(
                    inner=make_policy(config.policy, config.rho_t),
                    victim_links=all_barred)
                scheduler = FixedPriorityScheduler(
                    num_nodes=session.prepared.topology.num_nodes,
                    num_offsets=session.prepared.num_channels,
                    reuse_graph=session.prepared.reuse, policy=barrier)
                rebuilt = scheduler.run(session.flow_set)
                if sp is not None:
                    sp.annotate(barred=len(all_barred),
                                schedulable=rebuilt.schedulable)
            payload.update(repair_mode="rebuild",
                           schedulable=rebuilt.schedulable)
            if rebuilt.schedulable:
                session.schedule = rebuilt.schedule
                session.schedulable = True
            # else: roll back — keep serving the previous schedule.
        if payload["schedulable"]:
            session.barred |= set(victims)
        payload["schedule_hash"] = session.schedule.canonical_hash()
        payload["barred_links"] = len(session.barred)
        return payload

    def _explain(self, request: Request) -> Dict:
        from repro.obs.explain import explain_cell

        session = self._session(request)
        sender, receiver = request.link
        num_nodes = session.prepared.topology.num_nodes
        if not (0 <= sender < num_nodes and 0 <= receiver < num_nodes):
            raise ServiceError(f"link {request.link} out of range for "
                               f"{num_nodes} nodes")
        if not 0 <= request.slot < session.schedule.num_slots:
            raise ServiceError(f"slot {request.slot} out of range for "
                               f"{session.schedule.num_slots} slots")
        rho = (math.inf if session.config.policy == "NR"
               else session.config.rho_t)
        lines = explain_cell(session.schedule, session.prepared.reuse,
                             sender, receiver, request.slot, rho)
        return {"lines": list(lines), "rho_t": None if rho == math.inf
                else rho}

    def _simulate(self, request: Request) -> Dict:
        from repro.simulator.engine import (
            SimulationConfig,
            TschSimulator,
            resolve_engine,
        )

        session = self._session(request)
        if not session.schedulable:
            raise ServiceError(
                f"network {request.network!r} has no live schedule to "
                f"simulate (last compile/repair failed)")
        config = session.config
        with stage("cache.environment") as sp:
            environment, env_verdict = self.cache.get_or_build(
                "environment", config.topology_hash(),
                lambda: build_environment(config))
            if sp is not None:
                sp.annotate(verdict=env_verdict)
        _note_cache("environment", env_verdict)
        # A client-chosen seed makes runs reproducible across requests;
        # the default derives from the network config so two networks
        # sharing a topology still draw distinct fading.
        sim_seed = request.sim_seed if request.sim_seed is not None \
            else config.seed + 7000
        engine = request.engine or "auto"
        repetitions = request.repetitions or 18
        simulator = TschSimulator(
            schedule=session.schedule, flow_set=session.flow_set,
            environment=environment,
            channel_map=session.prepared.topology.channel_map,
            config=SimulationConfig(seed=sim_seed, engine=engine))
        with stage("simulate") as sp:
            stats = simulator.run(repetitions)
            if sp is not None:
                resolved = resolve_engine(engine, repetitions)
                sp.annotate(engine=resolved, repetitions=repetitions)
                if resolved == "event":
                    from repro.simulator.events import default_chunk_size

                    chunk = default_chunk_size(simulator.draw_plan,
                                               repetitions)
                    sp.annotate(chunks=-(-repetitions // chunk))
        per_flow = stats.pdr_per_flow()
        return {
            "repetitions": repetitions,
            "engine": resolve_engine(engine, repetitions),
            "seed": sim_seed,
            "schedule_hash": session.schedule.canonical_hash(),
            "median_pdr": stats.median_pdr(),
            "worst_pdr": stats.worst_pdr(),
            "per_flow_pdr": {str(flow): pdr
                             for flow, pdr in sorted(per_flow.items())},
            "channel_prr": {str(channel): prr for channel, prr in
                            sorted(stats.channel_prr().items())},
            "cache": {"environment": env_verdict},
        }

    # -- introspection ---------------------------------------------------

    def status(self) -> Dict:
        """Counters + per-network session summaries (JSON-ready)."""
        return {
            "worker": self.worker_index,
            "uptime_s": round(time.time() - self.started, 3),
            "requests": dict(sorted(self.requests.items())),
            "errors": self.errors,
            "networks": len(self.sessions),
            "repair_fallbacks": self.fallbacks,
            "cache": self.cache.stats(),
            "sessions": {name: session.summary()
                         for name, session in
                         sorted(self.sessions.items())},
        }
