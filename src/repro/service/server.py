"""The asyncio front-end of the scheduling service.

Accepts newline-delimited JSON over TCP or a Unix socket, parses and
validates each request line, and routes the worker verbs to a pool of
worker *processes* — one pipe per worker, requests sharded by
:func:`repro.service.protocol.shard_of` over the network name.  The
event loop never blocks on a pipe: each worker gets a reader thread
(``conn.recv`` → ``loop.call_soon_threadsafe``) and a writer thread
draining an outbound queue, and responses are matched to callers FIFO —
sound because a worker answers strictly in arrival order.

Pipelining: the per-connection read loop dispatches each request to its
shard *synchronously* (enqueue + future) and then lets a task await the
future and write the response line, so a slow ``schedule`` on one
network does not stall requests for other networks arriving on the same
connection, while requests for one network still execute in arrival
order on its owning worker.

Control verbs are answered in the front-end: ``status`` aggregates
every worker's counters, ``metrics`` merges the workers' metric
snapshots (plus the front-end's own, when recording) into one
OpenMetrics exposition, ``ping`` is a liveness probe.

Shutdown: SIGTERM / SIGINT stop the accept loop, send every worker the
``None`` sentinel (workers flush ledger batches and export obs
artifacts), and join the pool; in-flight requests complete first.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import queue
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.openmetrics import render_openmetrics
from repro.service.protocol import (
    ProtocolError,
    Request,
    WORKER_VERBS,
    encode_line,
    error_response,
    ok_response,
    parse_request,
    shard_of,
)
from repro.service.worker import DEFAULT_BATCH_SIZE, WorkerOptions, worker_main

#: Generous per-line limit: requests are small; responses (which may
#: embed full schedules) are written, not read, by the server.
_LINE_LIMIT = 4 * 1024 * 1024

#: Sentinel the front-end puts on a worker's outbound queue to make the
#: writer thread forward the shutdown ``None`` and exit.
_SHUTDOWN = object()


@dataclass
class ServiceOptions:
    """Everything ``repro serve`` configures.

    Exactly one of ``socket_path`` (Unix socket) or ``host``/``port``
    (TCP) selects the listener.
    """

    socket_path: Optional[str] = None
    host: str = "127.0.0.1"
    port: int = 7013
    num_workers: int = 2
    cache_capacity: int = 256
    batch_size: int = DEFAULT_BATCH_SIZE
    ledger_path: Optional[str] = None
    trace_path: Optional[str] = None
    metrics_path: Optional[str] = None
    provenance_path: Optional[str] = None
    timeseries_path: Optional[str] = None
    spans_path: Optional[str] = None
    span_threshold_ms: float = 50.0
    kernel: Optional[str] = None

    def worker_options(self) -> WorkerOptions:
        return WorkerOptions(
            cache_capacity=self.cache_capacity,
            batch_size=self.batch_size,
            ledger_path=self.ledger_path,
            trace_path=self.trace_path,
            metrics_path=self.metrics_path,
            provenance_path=self.provenance_path,
            timeseries_path=self.timeseries_path,
            spans_path=self.spans_path,
            span_threshold_ms=self.span_threshold_ms,
            kernel=self.kernel)


class _WorkerHandle:
    """Front-end view of one worker process: pipe, threads, FIFO queue."""

    def __init__(self, index: int, process, conn):
        self.index = index
        self.process = process
        self.conn = conn
        self.pending: Deque[asyncio.Future] = deque()
        self.outbound: "queue.Queue" = queue.Queue()
        self.alive = True
        self.served = 0
        self.reader: Optional[threading.Thread] = None
        self.writer: Optional[threading.Thread] = None


class ScheduleService:
    """The running service: worker pool + listener + dispatcher."""

    def __init__(self, options: ServiceOptions):
        self.options = options
        self.workers: List[_WorkerHandle] = []
        self.server: Optional[asyncio.AbstractServer] = None
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self.started = time.time()
        self.connections = 0
        self.protocol_errors = 0
        self.front_requests: Dict[str, int] = {}
        self._stopping = False

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> str:
        """Spawn the pool, start the listener; returns the bound address."""
        self.loop = asyncio.get_running_loop()
        context = multiprocessing.get_context("fork")
        worker_options = self.options.worker_options()
        for index in range(self.options.num_workers):
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=worker_main,
                args=(index, child_conn, worker_options),
                name=f"repro-serve-w{index}", daemon=True)
            process.start()
            child_conn.close()
            self.workers.append(_WorkerHandle(index, process, parent_conn))
        # Threads only after every fork: forking a threaded process is
        # where deadlocks live.
        for handle in self.workers:
            handle.reader = threading.Thread(
                target=self._reader_loop, args=(handle,), daemon=True)
            handle.writer = threading.Thread(
                target=self._writer_loop, args=(handle,), daemon=True)
            handle.reader.start()
            handle.writer.start()
        if self.options.socket_path:
            self.server = await asyncio.start_unix_server(
                self._handle_client, path=self.options.socket_path,
                limit=_LINE_LIMIT)
            return f"unix:{self.options.socket_path}"
        self.server = await asyncio.start_server(
            self._handle_client, host=self.options.host,
            port=self.options.port, limit=_LINE_LIMIT)
        sockets = self.server.sockets or []
        bound = sockets[0].getsockname() if sockets else \
            (self.options.host, self.options.port)
        return f"tcp:{bound[0]}:{bound[1]}"

    async def stop(self) -> None:
        """Graceful shutdown: close listener, drain + join the pool."""
        if self._stopping:
            return
        self._stopping = True
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()
        for handle in self.workers:
            handle.outbound.put(_SHUTDOWN)
        deadline = time.time() + 15.0
        for handle in self.workers:
            handle.process.join(timeout=max(0.1, deadline - time.time()))
            if handle.process.is_alive():  # pragma: no cover - stuck worker
                handle.process.terminate()
                handle.process.join(timeout=2.0)
        # Let the reader threads deliver the workers' final
        # ``worker_exit`` payloads (served counts) before marking dead.
        for handle in self.workers:
            if handle.reader is not None:
                handle.reader.join(timeout=2.0)
        await asyncio.sleep(0)
        for handle in self.workers:
            self._mark_dead(handle)

    # -- worker pipe threads ---------------------------------------------

    def _reader_loop(self, handle: _WorkerHandle) -> None:
        while True:
            try:
                payload = handle.conn.recv()
            except (EOFError, OSError):
                break
            self.loop.call_soon_threadsafe(self._resolve, handle, payload)
        self.loop.call_soon_threadsafe(self._mark_dead, handle)

    def _writer_loop(self, handle: _WorkerHandle) -> None:
        while True:
            item = handle.outbound.get()
            try:
                if item is _SHUTDOWN:
                    handle.conn.send(None)
                    break
                handle.conn.send(item)
            except (OSError, BrokenPipeError):
                break

    def _resolve(self, handle: _WorkerHandle, payload) -> None:
        if isinstance(payload, dict) and payload.get("kind") == \
                "worker_exit":
            handle.served = payload.get("served", handle.served)
            return
        if not handle.pending:  # pragma: no cover - protocol violation
            return
        future = handle.pending.popleft()
        if not future.done():
            future.set_result(payload)

    def _mark_dead(self, handle: _WorkerHandle) -> None:
        handle.alive = False
        while handle.pending:
            future = handle.pending.popleft()
            if not future.done():
                future.set_result({
                    "id": None, "ok": False, "verb": None,
                    "error": {"type": "WorkerDied",
                              "message": f"worker {handle.index} exited "
                                         f"before answering"}})

    # -- dispatch --------------------------------------------------------

    def _dispatch_nowait(self, handle: _WorkerHandle,
                         message) -> asyncio.Future:
        """Enqueue one message for a worker; future resolves FIFO.

        Must run on the event loop: the append + put pair is what keeps
        the pending deque aligned with the worker's arrival order.
        """
        future = self.loop.create_future()
        if not handle.alive:
            future.set_result({
                "id": None, "ok": False, "verb": None,
                "error": {"type": "WorkerDied",
                          "message": f"worker {handle.index} is not "
                                     f"running"}})
            return future
        handle.pending.append(future)
        handle.outbound.put(message)
        return future

    def dispatch_request(self, request: Request) -> asyncio.Future:
        shard = shard_of(request.network, len(self.workers))
        return self._dispatch_nowait(self.workers[shard],
                                     ("request", request.to_dict()))

    async def _control_all(self, kind: str) -> List:
        futures = [self._dispatch_nowait(handle, (kind,))
                   for handle in self.workers if handle.alive]
        return list(await asyncio.gather(*futures))

    # -- control verbs ---------------------------------------------------

    async def _status(self) -> Dict:
        worker_statuses = await self._control_all("status")
        cache_totals = {"entries": 0, "hit_total": 0, "miss_total": 0,
                        "evictions": 0, "invalidations": 0}
        requests: Dict[str, int] = {}
        errors = 0
        networks = 0
        fallbacks = 0
        for status in worker_statuses:
            if not isinstance(status, dict) or "cache" not in status:
                continue
            for key in cache_totals:
                cache_totals[key] += status["cache"].get(key, 0)
            for verb, count in status.get("requests", {}).items():
                requests[verb] = requests.get(verb, 0) + count
            errors += status.get("errors", 0)
            networks += status.get("networks", 0)
            fallbacks += status.get("repair_fallbacks", 0)
        return {
            "uptime_s": round(time.time() - self.started, 3),
            "workers": len(self.workers),
            "workers_alive": sum(1 for h in self.workers if h.alive),
            "connections": self.connections,
            "protocol_errors": self.protocol_errors,
            "front_requests": dict(sorted(self.front_requests.items())),
            "requests": dict(sorted(requests.items())),
            "errors": errors,
            "networks": networks,
            "repair_fallbacks": fallbacks,
            "cache": cache_totals,
            "worker_status": worker_statuses,
        }

    async def _metrics(self) -> Dict:
        from repro.obs import recorder as _obs

        snapshots = [snapshot for snapshot
                     in await self._control_all("metrics")
                     if isinstance(snapshot, dict)]
        if _obs.ENABLED:
            snapshots.append(_obs.RECORDER.snapshot())
        merged = MetricsRegistry.merge_snapshots(snapshots)
        timeseries = (_obs.RECORDER.timeseries
                      if _obs.ENABLED else None)
        return {"workers": len(snapshots),
                "exposition": render_openmetrics(merged,
                                                 timeseries=timeseries)}

    # -- request spans ---------------------------------------------------

    def _open_request_span(self, request: Request):
        """Start the front-end span pair for one request.

        Returns ``(root, dispatch)`` ActiveSpans (either may be None).
        The root span adopts the client's trace context when one came
        in; the dispatch span's context (plus the enqueue wall-clock
        stamp) is written onto the request so the owning worker can
        parent its own spans and synthesize the queue-wait span.
        """
        from repro.obs import recorder as _obs

        spans = _obs.RECORDER.spans if _obs.ENABLED else None
        if spans is None:
            return None, None
        incoming = request.trace or {}
        root = spans.start("request",
                           trace_id=incoming.get("trace_id"),
                           parent_id=incoming.get("span_id"),
                           attrs={"verb": request.verb,
                                  "network": request.network,
                                  "id": request.id})
        dispatch = None
        if request.verb in WORKER_VERBS:
            shard = shard_of(request.network, len(self.workers))
            dispatch = spans.start("dispatch", trace_id=root.trace_id,
                                   parent_id=root.span_id,
                                   attrs={"shard": shard})
            request.trace = {"trace_id": root.trace_id,
                             "span_id": dispatch.span_id,
                             "enqueued_unix": time.time()}
        return root, dispatch

    def _close_request_span(self, request: Request, response: Dict,
                            root, dispatch) -> Dict:
        """End the span pair with the response's status; echo the
        trace id back to the client (also when the client supplied a
        context but the server records no spans)."""
        from repro.obs import recorder as _obs

        ok = bool(response.get("ok"))
        status = "ok" if ok else "error"
        if not ok:
            error = response.get("error") or {}
            if root is not None:
                root.annotate(error=error.get("type"))
        if dispatch is not None:
            dispatch.end(status)
        trace_id = None
        if root is not None:
            duration_ms = root.end(status)
            spans = _obs.RECORDER.spans if _obs.ENABLED else None
            if spans is not None:
                spans.close_trace(root.trace_id, duration_ms,
                                  error=not ok)
            trace_id = root.trace_id
        elif request.trace:
            trace_id = request.trace.get("trace_id")
        if trace_id:
            response = dict(response)
            response["trace"] = {"trace_id": trace_id}
        return response

    # -- client connections ----------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        write_lock = asyncio.Lock()
        tasks: List[asyncio.Task] = []

        async def reply(payload: Dict) -> None:
            async with write_lock:
                writer.write(encode_line(payload))
                await writer.drain()

        async def answer(request: Request, future: "asyncio.Future",
                         root, dispatch) -> None:
            response = self._close_request_span(request, await future,
                                                root, dispatch)
            await reply(response)

        async def control(request: Request, root) -> None:
            try:
                if request.verb == "status":
                    result = await self._status()
                elif request.verb == "metrics":
                    result = await self._metrics()
                else:
                    result = {"pong": True,
                              "uptime_s": round(
                                  time.time() - self.started, 3)}
                response = ok_response(request, result)
            except Exception as error:  # pragma: no cover - defensive
                response = error_response(request, error)
            await reply(self._close_request_span(request, response,
                                                 root, None))

        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self.protocol_errors += 1
                    await reply(error_response(
                        None, ProtocolError("request line too long")))
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = parse_request(line.decode("utf-8"))
                except ProtocolError as error:
                    self.protocol_errors += 1
                    await reply(error_response(None, error))
                    continue
                self.front_requests[request.verb] = \
                    self.front_requests.get(request.verb, 0) + 1
                from repro.obs import recorder as _obs
                if _obs.ENABLED:
                    _obs.RECORDER.count("service.front.requests")
                    _obs.RECORDER.count(
                        f"service.front.requests.{request.verb}")
                root, dispatch = self._open_request_span(request)
                if request.verb in WORKER_VERBS:
                    # Synchronous dispatch pins per-network ordering;
                    # the response write happens off-loop-order.
                    future = self.dispatch_request(request)
                    tasks.append(asyncio.ensure_future(
                        answer(request, future, root, dispatch)))
                else:
                    tasks.append(asyncio.ensure_future(
                        control(request, root)))
        except ConnectionResetError:  # pragma: no cover - client vanished
            pass
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, OSError):  # pragma: no cover
                pass


async def _serve(options: ServiceOptions) -> int:
    service = ScheduleService(options)
    address = await service.start()
    stop_event = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop_event.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    print(f"repro-serve: listening on {address} with "
          f"{options.num_workers} worker(s)", flush=True)
    await stop_event.wait()
    print("repro-serve: shutting down", flush=True)
    await service.stop()
    served = sum(handle.served for handle in service.workers)
    print(f"repro-serve: drained {served} request(s) across "
          f"{len(service.workers)} worker(s)", flush=True)
    return 0


def run_service(options: ServiceOptions) -> int:
    """Blocking entry point for ``repro serve`` (returns the exit code)."""
    return asyncio.run(_serve(options))
