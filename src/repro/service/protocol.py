"""Wire protocol of the scheduling service: newline-delimited JSON.

One request per line, one response line per request, over TCP or a Unix
socket.  The framing is deliberately primitive — ``readline`` is the
whole parser — so any language (or ``nc``) can drive the service, and a
single connection can pipeline: requests carry a client-chosen ``id``
that the matching response echoes, so responses arriving in service
order can be re-associated however the client interleaved its verbs.

Request shape::

    {"id": 7, "verb": "schedule", "network": "plant-3",
     "config": {"testbed": "indriya", "seed": 1, "channels": 5,
                "flows": 10, "policy": "RC", "rho_t": 2,
                "traffic": "p2p", "workload_seed": 3}}

Response shape::

    {"id": 7, "ok": true, "verb": "schedule", "network": "plant-3",
     "worker": 1, "result": {...}}           # or, on failure:
    {"id": 7, "ok": false, "verb": "schedule", "network": "plant-3",
     "error": {"type": "...", "message": "..."}}

Requests may carry an optional ``trace`` object — ``{"trace_id": ...,
"span_id": ...}`` per :mod:`repro.obs.spans` — adopted by the
front-end's request span and echoed (``{"trace_id": ...}``) in the
response, so a client can find its own requests in the span dumps.
The front-end rewrites the context (adding ``enqueued_unix``) before
forwarding to a worker; clients never need that field.

Verbs: ``schedule`` (compile a network's superframe), ``reschedule``
(repair the running schedule around victim links), ``explain``
(constraint chain for one link × slot), ``status`` (service and cache
counters), ``metrics`` (OpenMetrics exposition), ``ping``.

The *network* name is the sharding key: :func:`shard_of` maps it
deterministically (CRC-32, stable across processes and runs — unlike
``hash()`` under ``PYTHONHASHSEED``) to a worker index, so all requests
for one network serialize on one worker while distinct networks run in
parallel.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Tuple

from repro.obs.ledger import config_hash

#: Verbs executed by a worker (shard-routed on the network name).
WORKER_VERBS = ("schedule", "reschedule", "explain", "simulate")
#: Verbs answered by the front-end (aggregated over every worker).
CONTROL_VERBS = ("status", "metrics", "ping")
VERBS = WORKER_VERBS + CONTROL_VERBS

#: Simulator engines a ``simulate`` request may name.
SIM_ENGINES = ("slot", "event", "auto")

#: Hard cap on repetitions per ``simulate`` request — a worker is
#: shared; long Monte-Carlo sweeps belong in the experiment CLIs.
MAX_SIM_REPETITIONS = 1000


class ProtocolError(ValueError):
    """A request line the service cannot accept (bad JSON, bad verb,
    missing fields).  The message is safe to echo back to the client."""


@dataclass(frozen=True)
class NetworkConfig:
    """Everything that defines one network's scheduling problem.

    The canonical hash of (subsets of) these fields keys the artifact
    cache: two requests agreeing on :meth:`topology_hash` share a
    prepared network, on :meth:`workload_hash` a routed flow set, and on
    :meth:`schedule_hash` the compiled superframe itself.

    ``seed`` seeds the testbed synthesis; ``workload_seed`` seeds flow
    generation (default: same as ``seed``), so a fleet of networks can
    share one physical topology while carrying distinct workloads.
    """

    testbed: str = "indriya"
    seed: int = 0
    channels: int = 5
    flows: int = 10
    traffic: str = "p2p"
    period_min_exp: int = 0
    period_max_exp: int = 3
    policy: str = "RC"
    rho_t: int = 2
    workload_seed: Optional[int] = None

    def __post_init__(self):
        if self.testbed not in ("indriya", "wustl"):
            raise ProtocolError(f"unknown testbed: {self.testbed!r}")
        if self.policy not in ("NR", "RA", "RC"):
            raise ProtocolError(f"unknown policy: {self.policy!r}")
        if self.traffic not in ("p2p", "centralized"):
            raise ProtocolError(f"unknown traffic: {self.traffic!r}")
        if self.flows <= 0 or self.channels <= 0:
            raise ProtocolError("flows and channels must be positive")

    @classmethod
    def from_dict(cls, data: Dict) -> "NetworkConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ProtocolError(
                f"unknown config field(s): {sorted(unknown)}")
        try:
            return cls(**{key: data[key] for key in data})
        except TypeError as error:
            raise ProtocolError(f"bad config: {error}")

    def to_dict(self) -> Dict:
        return {"testbed": self.testbed, "seed": self.seed,
                "channels": self.channels, "flows": self.flows,
                "traffic": self.traffic,
                "period_min_exp": self.period_min_exp,
                "period_max_exp": self.period_max_exp,
                "policy": self.policy, "rho_t": self.rho_t,
                "workload_seed": self.workload_seed}

    @property
    def effective_workload_seed(self) -> int:
        return self.seed if self.workload_seed is None else \
            self.workload_seed

    def topology_hash(self) -> str:
        """Cache key of the prepared network (graphs + hop matrix)."""
        return config_hash({"kind": "topology", "testbed": self.testbed,
                            "seed": self.seed,
                            "channels": self.channels})

    def workload_hash(self) -> str:
        """Cache key of the routed, priority-ordered flow set."""
        return config_hash({"kind": "workload", "testbed": self.testbed,
                            "seed": self.seed,
                            "channels": self.channels,
                            "flows": self.flows, "traffic": self.traffic,
                            "period_min_exp": self.period_min_exp,
                            "period_max_exp": self.period_max_exp,
                            "workload_seed": self.effective_workload_seed})

    def schedule_hash(self) -> str:
        """Cache key of the compiled superframe (full config)."""
        return config_hash(dict(self.to_dict(), kind="schedule",
                                workload_seed=self.effective_workload_seed))


@dataclass
class Request:
    """A validated request (see module docstring for the wire form)."""

    verb: str
    network: str = ""
    id: object = None
    config: Optional[NetworkConfig] = None
    victims: object = None            # "auto" | [[u, v], ...] | None
    link: Optional[Tuple[int, int]] = None
    slot: Optional[int] = None
    include_schedule: bool = False
    repetitions: Optional[int] = None
    engine: Optional[str] = None
    sim_seed: Optional[int] = None
    trace: Optional[Dict] = None
    raw: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        """Picklable wire form (what the front-end forwards to workers)."""
        payload: Dict = {"verb": self.verb, "id": self.id}
        if self.network:
            payload["network"] = self.network
        if self.config is not None:
            payload["config"] = self.config.to_dict()
        if self.victims is not None:
            payload["victims"] = self.victims
        if self.link is not None:
            payload["link"] = list(self.link)
        if self.slot is not None:
            payload["slot"] = self.slot
        if self.include_schedule:
            payload["include_schedule"] = True
        if self.repetitions is not None:
            payload["repetitions"] = self.repetitions
        if self.engine is not None:
            payload["engine"] = self.engine
        if self.sim_seed is not None:
            payload["seed"] = self.sim_seed
        if self.trace is not None:
            payload["trace"] = self.trace
        return payload


def parse_request(data) -> Request:
    """Validate one request (a JSON text line or an already-parsed dict).

    Raises:
        ProtocolError: On malformed JSON, unknown verbs, or missing /
            ill-typed fields.  The front-end turns this into an error
            response without involving a worker.
    """
    if isinstance(data, (str, bytes)):
        try:
            data = json.loads(data)
        except json.JSONDecodeError as error:
            raise ProtocolError(f"bad JSON: {error}")
    if not isinstance(data, dict):
        raise ProtocolError("request must be a JSON object")
    verb = data.get("verb")
    if verb not in VERBS:
        raise ProtocolError(f"unknown verb: {verb!r} "
                            f"(expected one of {list(VERBS)})")
    request = Request(verb=verb, id=data.get("id"),
                      network=str(data.get("network", "")), raw=data)
    if data.get("trace") is not None:
        request.trace = _parse_trace_context(data["trace"])
    if verb in WORKER_VERBS and not request.network:
        raise ProtocolError(f"{verb} needs a 'network' name")
    if verb == "schedule":
        config = data.get("config")
        if not isinstance(config, dict):
            raise ProtocolError("schedule needs a 'config' object")
        request.config = NetworkConfig.from_dict(config)
        request.include_schedule = bool(data.get("include_schedule"))
    elif verb == "reschedule":
        victims = data.get("victims", "auto")
        if victims != "auto":
            try:
                victims = [(int(u), int(v)) for u, v in victims]
            except (TypeError, ValueError):
                raise ProtocolError(
                    "victims must be \"auto\" or a list of [u, v] pairs")
        request.victims = victims
    elif verb == "explain":
        link = data.get("link")
        try:
            sender, receiver = (int(link[0]), int(link[1]))
        except (TypeError, ValueError, IndexError):
            raise ProtocolError("explain needs 'link': [sender, receiver]")
        request.link = (sender, receiver)
        try:
            request.slot = int(data["slot"])
        except (KeyError, TypeError, ValueError):
            raise ProtocolError("explain needs an integer 'slot'")
    elif verb == "simulate":
        try:
            request.repetitions = int(data.get("repetitions", 18))
        except (TypeError, ValueError):
            raise ProtocolError("repetitions must be an integer")
        if not 1 <= request.repetitions <= MAX_SIM_REPETITIONS:
            raise ProtocolError(
                f"repetitions must be in [1, {MAX_SIM_REPETITIONS}]")
        request.engine = str(data.get("engine", "auto"))
        if request.engine not in SIM_ENGINES:
            raise ProtocolError(
                f"engine must be one of {list(SIM_ENGINES)}")
        if data.get("seed") is not None:
            try:
                request.sim_seed = int(data["seed"])
            except (TypeError, ValueError):
                raise ProtocolError("seed must be an integer")
            if request.sim_seed < 0:
                raise ProtocolError("seed must be non-negative")
    return request


#: Upper bound on client-supplied trace/span id length.
MAX_TRACE_ID_LEN = 64


def _parse_trace_context(data) -> Dict:
    """Validate a request's ``trace`` object (strict, like configs)."""
    if not isinstance(data, dict):
        raise ProtocolError("trace must be a JSON object")
    unknown = set(data) - {"trace_id", "span_id", "enqueued_unix"}
    if unknown:
        raise ProtocolError(f"unknown trace field(s): {sorted(unknown)}")
    trace_id = data.get("trace_id")
    if not isinstance(trace_id, str) or not trace_id \
            or len(trace_id) > MAX_TRACE_ID_LEN:
        raise ProtocolError("trace.trace_id must be a non-empty string "
                            f"of <= {MAX_TRACE_ID_LEN} chars")
    span_id = data.get("span_id")
    if span_id is not None and (not isinstance(span_id, str)
                                or len(span_id) > MAX_TRACE_ID_LEN):
        raise ProtocolError("trace.span_id must be a string of <= "
                            f"{MAX_TRACE_ID_LEN} chars")
    enqueued = data.get("enqueued_unix")
    if enqueued is not None and not isinstance(enqueued, (int, float)):
        raise ProtocolError("trace.enqueued_unix must be a number")
    return dict(data)


def ok_response(request: Request, result: Dict,
                worker: Optional[int] = None) -> Dict:
    response: Dict = {"id": request.id, "ok": True, "verb": request.verb,
                      "result": result}
    if request.network:
        response["network"] = request.network
    if worker is not None:
        response["worker"] = worker
    return response


def error_response(request: Optional[Request], error: Exception,
                   worker: Optional[int] = None) -> Dict:
    response: Dict = {
        "id": request.id if request is not None else None,
        "ok": False,
        "verb": request.verb if request is not None else None,
        "error": {"type": type(error).__name__, "message": str(error)},
    }
    if request is not None and request.network:
        response["network"] = request.network
    if worker is not None:
        response["worker"] = worker
    return response


def encode_line(payload: Dict) -> bytes:
    """One compact JSON line, ready for the socket."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") \
        + b"\n"


def shard_of(network: str, num_workers: int) -> int:
    """Deterministic worker index for a network name.

    CRC-32 of the UTF-8 name modulo the pool size: stable across
    processes, runs, and machines, so a network always lands on the
    same worker (its requests serialize) for any fixed pool size.
    """
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    return zlib.crc32(network.encode("utf-8")) % num_workers


def partition_by_shard(networks: List[str],
                       num_workers: int) -> List[List[str]]:
    """Networks grouped by their shard (diagnostics / tests)."""
    groups: List[List[str]] = [[] for _ in range(num_workers)]
    for network in networks:
        groups[shard_of(network, num_workers)].append(network)
    return groups
