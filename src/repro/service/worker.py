"""Worker-process side of the scheduling service.

Each worker owns one shard of the network fleet: a
:class:`~repro.service.executor.ServiceExecutor` (artifact cache +
sessions), its own observability recorder, and a duplex pipe to the
asyncio front-end.  The loop is strictly serial — receive one message,
answer it, repeat — which is what makes the sharding contract hold:
requests for the same network arrive on the same pipe in order and
therefore serialize, with no locks anywhere in the execution path.

Messages from the front-end are tuples: ``("request", payload_dict)``
for the shard-routed verbs, ``("status",)`` / ``("metrics",)`` control
probes, and ``None`` for graceful shutdown.  Every message gets exactly
one reply, so the front-end can match responses FIFO.

**Ledger batching.**  A service turning over thousands of requests must
not write one ledger record per request; the worker opens a run record
when a batch's first request lands and commits it — one atomic
``O_APPEND`` line, see :meth:`repro.obs.ledger.RunLedger.append` —
every ``batch_size`` requests and at shutdown, carrying per-verb
counts, error counts, and the cache's hit/miss counters as headline
metrics.

**Observability.**  The recorder is always on in a worker (counters are
the point of a long-lived service); trace / metrics / provenance dumps
are exported at shutdown to the configured path with a ``.w<index>``
suffix so N workers never fight over one file.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.obs.spans import SpanRecorder, activate
from repro.service.executor import ServiceExecutor
from repro.service.protocol import (
    ProtocolError,
    error_response,
    ok_response,
    parse_request,
)

#: Default requests per ledger batch record.
DEFAULT_BATCH_SIZE = 100


@dataclass(frozen=True)
class WorkerOptions:
    """Picklable worker configuration (crosses the fork/spawn boundary).

    Attributes:
        cache_capacity: Artifact-cache LRU bound per worker.
        batch_size: Requests per ledger batch record.
        ledger_path: Run ledger to append batch records to (None = off).
        trace_path: Export the worker's event trace here (+``.w<i>``).
        metrics_path: Export the metrics snapshot here (+``.w<i>``).
        provenance_path: Record + export decision provenance (+``.w<i>``).
        timeseries_path: Sample per-batch ``service.*`` series and
            export them here (+``.w<i>``) for ``repro top``.
        spans_path: Record request-path spans (work span, queue wait,
            executor stages) with tail-based exemplar capture and
            export them here (+``.w<i>``).
        span_threshold_ms: Root-span latency at/above which a trace is
            kept (see :class:`repro.obs.spans.SpanRecorder`).
        kernel: Placement-kernel mode to pin process-wide (None = keep
            the default crossover-aware ``auto``).
    """

    cache_capacity: int = 256
    batch_size: int = DEFAULT_BATCH_SIZE
    ledger_path: Optional[str] = None
    trace_path: Optional[str] = None
    metrics_path: Optional[str] = None
    provenance_path: Optional[str] = None
    timeseries_path: Optional[str] = None
    spans_path: Optional[str] = None
    span_threshold_ms: float = 50.0
    kernel: Optional[str] = None


class _LedgerBatcher:
    """Folds per-request accounting into one ledger record per batch.

    Also the service's time-series cadence: each batch boundary samples
    ``service.*`` series (requests, errors, cumulative cache hit rate)
    at ``t = batch_index`` on the worker's recorder — a no-op unless the
    recorder carries a store (``--timeseries``).
    """

    def __init__(self, index: int, options: WorkerOptions, recorder=None):
        from repro.obs.ledger import RunLedger

        self.index = index
        self.options = options
        self.recorder = recorder
        self.ledger = (RunLedger(options.ledger_path)
                       if options.ledger_path else None)
        self.batch_index = 0
        self.record: Optional[Dict] = None
        self.counts: Dict[str, int] = {}
        self.batch_errors = 0

    def note(self, verb: str, ok: bool, cache_stats: Dict) -> None:
        from repro.obs.ledger import new_record

        if self.ledger is not None and self.record is None:
            self.record = new_record(
                "serve", argv=[],
                config={"worker": self.index,
                        "batch": self.batch_index,
                        "batch_size": self.options.batch_size})
        self.counts[verb] = self.counts.get(verb, 0) + 1
        if not ok:
            self.batch_errors += 1
        if sum(self.counts.values()) >= self.options.batch_size:
            self.flush(cache_stats)

    def flush(self, cache_stats: Dict) -> None:
        total = sum(self.counts.values())
        if total == 0:
            return
        if self.recorder is not None:
            t = float(self.batch_index)
            self.recorder.sample("service.requests", t, float(total))
            self.recorder.sample("service.errors", t,
                                 float(self.batch_errors))
            lookups = (cache_stats.get("hit_total", 0)
                       + cache_stats.get("miss_total", 0))
            if lookups:
                self.recorder.sample(
                    "service.cache_hit_rate", t,
                    cache_stats.get("hit_total", 0) / lookups)
        if self.ledger is not None and self.record is not None:
            metrics = {f"requests.{verb}": count
                       for verb, count in sorted(self.counts.items())}
            metrics["requests"] = total
            metrics["errors"] = self.batch_errors
            metrics["cache_hits"] = cache_stats.get("hit_total", 0)
            metrics["cache_misses"] = cache_stats.get("miss_total", 0)
            status = "ok" if self.batch_errors == 0 else \
                f"ok:{self.batch_errors}-errors"
            self.ledger.commit(self.record, status=status, metrics=metrics)
        self.record = None
        self.counts = {}
        self.batch_errors = 0
        self.batch_index += 1


def _worker_path(path: str, index: int) -> str:
    return f"{path}.w{index}"


def _begin_work_span(spans: Optional[SpanRecorder], payload: Dict,
                     index: int):
    """Open this worker's local-root ``work`` span for one request.

    When the front-end forwarded a trace context, the work span joins
    that trace (parented under the front-end's dispatch span) and the
    pipe/queue wait is synthesized as a sibling ``shard.queue`` span
    from the forwarded enqueue wall-clock stamp.  Without a context
    (front-end not recording spans) the worker starts its own trace,
    so worker-side waterfalls exist either way.
    """
    if spans is None:
        return None
    wire = payload.get("trace")
    trace_id = parent = None
    if isinstance(wire, dict):
        trace_id = wire.get("trace_id")
        parent = wire.get("span_id")
        enqueued = wire.get("enqueued_unix")
        if trace_id and isinstance(enqueued, (int, float)):
            waited_ms = max(0.0, (time.time() - float(enqueued)) * 1e3)
            spans.record("shard.queue", trace_id=trace_id,
                         parent_id=parent, start_unix=float(enqueued),
                         duration_ms=waited_ms)
    return spans.start("work", trace_id=trace_id, parent_id=parent,
                       attrs={"worker": index,
                              "verb": payload.get("verb"),
                              "network": payload.get("network")})


def worker_main(index: int, conn, options: WorkerOptions) -> None:
    """Entry point of one worker process (runs until told to stop)."""
    from repro import obs
    from repro.core import kernel as _kernel

    if options.kernel:
        _kernel.set_kernel(options.kernel)
    prov = None
    if options.provenance_path:
        from repro.obs.provenance import ProvenanceRecorder

        prov = ProvenanceRecorder()
    timeseries = (obs.TimeSeriesStore()
                  if options.timeseries_path else None)
    spans = (SpanRecorder(threshold_ms=options.span_threshold_ms,
                          process=f"worker-{index}")
             if options.spans_path else None)
    recorder = obs.recorder.enable(obs.Recorder(provenance=prov,
                                                timeseries=timeseries,
                                                spans=spans))
    executor = ServiceExecutor(cache_capacity=options.cache_capacity,
                               worker_index=index)
    batcher = _LedgerBatcher(index, options, recorder)
    served = 0
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is None:
                break
            kind = message[0]
            if kind == "request":
                work = _begin_work_span(spans, message[1], index)
                try:
                    with activate(work):
                        request = parse_request(message[1])
                        result = executor.handle(request)
                    response = ok_response(request, result, worker=index)
                except ProtocolError as error:
                    response = error_response(None, error, worker=index)
                except Exception as error:  # stay alive per-request
                    parsed = locals().get("request")
                    response = error_response(
                        parsed if parsed is not None else None, error,
                        worker=index)
                if work is not None:
                    ok = bool(response.get("ok"))
                    duration_ms = work.end("ok" if ok else "error")
                    spans.close_trace(work.trace_id, duration_ms,
                                      error=not ok)
                served += 1
                batcher.note(message[1].get("verb", "?"),
                             bool(response.get("ok")),
                             executor.cache.stats())
                conn.send(response)
            elif kind == "status":
                conn.send(executor.status())
            elif kind == "metrics":
                conn.send(recorder.snapshot())
            else:
                conn.send({"ok": False,
                           "error": {"type": "ProtocolError",
                                     "message": f"unknown control "
                                                f"message {kind!r}"}})
    finally:
        batcher.flush(executor.cache.stats())
        if options.trace_path:
            recorder.tracer.export_jsonl(
                _worker_path(options.trace_path, index))
        if options.metrics_path:
            from repro.io import save_metrics

            save_metrics(recorder.snapshot(),
                         _worker_path(options.metrics_path, index))
        if prov is not None and options.provenance_path:
            prov.export_jsonl(_worker_path(options.provenance_path, index))
        if spans is not None:
            spans.export_jsonl(_worker_path(options.spans_path, index))
        if timeseries is not None:
            timeseries.export_jsonl(
                _worker_path(options.timeseries_path, index))
        obs.recorder.disable()
        try:
            conn.send({"kind": "worker_exit", "worker": index,
                       "served": served})
            conn.close()
        except (OSError, BrokenPipeError):
            pass
