"""The fleet-scale scheduling service (PR 8).

A long-lived ``repro serve`` process: asyncio NDJSON front-end, worker
processes sharded by network name, a compiled-artifact cache keyed by
canonical config hashes, and the ``repro loadgen`` harness that drives
and verifies it.  See DESIGN.md §15.
"""

from repro.service.cache import ArtifactCache
from repro.service.executor import ServiceError, ServiceExecutor
from repro.service.loadgen import LoadgenOptions, build_plan, run_loadgen
from repro.service.protocol import (
    NetworkConfig,
    ProtocolError,
    Request,
    parse_request,
    shard_of,
)
from repro.service.server import ScheduleService, ServiceOptions, run_service

__all__ = [
    "ArtifactCache",
    "LoadgenOptions",
    "NetworkConfig",
    "ProtocolError",
    "Request",
    "ScheduleService",
    "ServiceError",
    "ServiceExecutor",
    "ServiceOptions",
    "build_plan",
    "parse_request",
    "run_loadgen",
    "run_service",
    "shard_of",
]
