"""Seeded load generator and latency harness for the service.

``repro loadgen`` drives a running ``repro serve`` instance with a
reproducible mixed workload: every network's first request compiles it
(``schedule``), later requests either re-request the same compiled
config (pure cache hits) or evolve the session (``reschedule`` with
auto-picked victims), with the mix ratio and the interleaving drawn
from one seeded generator — the same seed always produces the same
request stream, so latency reports are comparable across runs.

Two arrival models:

* ``rate == 0`` (closed loop) — one logical client per network, next
  request sent when the previous response lands.  Concurrency equals
  the network count; this is the model the bench section uses.
* ``rate > 0`` (open loop) — requests fired at exponential interarrival
  times regardless of completions, the standard way to measure latency
  under a fixed offered load without coordinated omission.

``--verify`` feeds every response through a *shadow*
:class:`~repro.service.executor.ServiceExecutor` executing the same
per-network request sequence in-process and compares
``schedule_hash``es — the bit-identity proof that the service (cache,
sharding, pipelining and all) returns exactly what direct library calls
return.  Verification adds in-process scheduling work, so latency
numbers from a verify run measure the harness, not the service.

``--trace-out`` records a client-side span per request (tail exemplars
only, per :mod:`repro.obs.spans`) and sends each request's trace
context to the service, so a slow request found in the loadgen report
can be looked up by trace id in the server's ``--spans`` dumps and
decomposed with ``repro trace show``.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs.spans import SpanRecorder, wire_context
from repro.service.protocol import NetworkConfig, encode_line, parse_request

_LINE_LIMIT = 4 * 1024 * 1024

#: Latency histogram bucket upper bounds, milliseconds.
_BUCKETS_MS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
               1000.0, float("inf"))


@dataclass
class LoadgenOptions:
    """Everything ``repro loadgen`` configures."""

    socket_path: Optional[str] = None
    host: str = "127.0.0.1"
    port: int = 7013
    requests: int = 100
    networks: int = 8
    rate: float = 0.0
    mix: float = 0.3
    seed: int = 0
    testbed: str = "indriya"
    channels: int = 5
    flows: int = 10
    policy: str = "RC"
    rho_t: int = 2
    traffic: str = "p2p"
    verify: bool = False
    report_out: Optional[str] = None
    #: Export client-side request spans here (tail exemplars; each
    #: request also carries its trace context to the service, so these
    #: trace ids join the server/worker span dumps).
    trace_out: Optional[str] = None
    trace_threshold_ms: float = 50.0


@dataclass
class _Stats:
    """Mutable accumulator shared by the client coroutines."""

    latencies_ms: List[float] = field(default_factory=list)
    verbs: Dict[str, int] = field(default_factory=dict)
    errors: int = 0
    error_samples: List[Dict] = field(default_factory=list)
    noops: int = 0
    repairs: int = 0
    rebuilds: int = 0
    verified: int = 0
    mismatches: int = 0
    mismatch_samples: List[Dict] = field(default_factory=list)


def build_plan(options: LoadgenOptions) -> List[Dict]:
    """The seeded request stream (wire dicts, ids = stream position).

    The first ``networks`` requests schedule each network once, in
    order; the rest pick a network and a verb from the seeded stream.
    All networks share one topology seed (exercising the shared
    topology artifact) while carrying per-network workload seeds.
    """
    rng = np.random.default_rng(options.seed)
    names = [f"net-{i:03d}" for i in range(options.networks)]
    configs = {
        name: NetworkConfig(
            testbed=options.testbed, seed=options.seed,
            channels=options.channels, flows=options.flows,
            traffic=options.traffic, policy=options.policy,
            rho_t=options.rho_t,
            workload_seed=options.seed + index).to_dict()
        for index, name in enumerate(names)}
    plan: List[Dict] = []
    for request_id in range(options.requests):
        if request_id < len(names):
            name = names[request_id]
            verb = "schedule"
        else:
            name = names[int(rng.integers(len(names)))]
            verb = ("reschedule" if rng.random() < options.mix
                    else "schedule")
        request: Dict = {"id": request_id, "verb": verb, "network": name}
        if verb == "schedule":
            request["config"] = configs[name]
        else:
            request["victims"] = "auto"
        plan.append(request)
    return plan


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = max(0, min(len(sorted_values) - 1,
                       int(np.ceil(q * len(sorted_values))) - 1))
    return sorted_values[index]


def _histogram(latencies_ms: List[float]) -> List[Dict]:
    counts = [0] * len(_BUCKETS_MS)
    for value in latencies_ms:
        for index, bound in enumerate(_BUCKETS_MS):
            if value <= bound:
                counts[index] += 1
                break
    return [{"le_ms": None if bound == float("inf") else bound,
             "count": count}
            for bound, count in zip(_BUCKETS_MS, counts)]


def format_histogram(histogram: List[Dict], width: int = 40) -> str:
    peak = max((bucket["count"] for bucket in histogram), default=0)
    lines = []
    for bucket in histogram:
        label = ("   +inf" if bucket["le_ms"] is None
                 else f"{bucket['le_ms']:7.0f}")
        bar = ("#" * max(1, int(width * bucket["count"] / peak))
               if bucket["count"] else "")
        lines.append(f"  <= {label} ms  {bucket['count']:6d}  {bar}")
    return "\n".join(lines)


class _Client:
    """One NDJSON connection with id-matched response futures."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self.lock = asyncio.Lock()
        self.pending: Dict[object, asyncio.Future] = {}
        self.reader_task: Optional[asyncio.Task] = None

    @classmethod
    async def connect(cls, options: LoadgenOptions) -> "_Client":
        if options.socket_path:
            reader, writer = await asyncio.open_unix_connection(
                options.socket_path, limit=_LINE_LIMIT)
        else:
            reader, writer = await asyncio.open_connection(
                options.host, options.port, limit=_LINE_LIMIT)
        client = cls(reader, writer)
        client.reader_task = asyncio.ensure_future(client._drain())
        return client

    async def _drain(self) -> None:
        while True:
            line = await self.reader.readline()
            if not line:
                break
            try:
                response = json.loads(line)
            except json.JSONDecodeError:  # pragma: no cover - bad server
                continue
            future = self.pending.pop(response.get("id"), None)
            if future is not None and not future.done():
                future.set_result(response)
        for future in self.pending.values():  # pragma: no cover
            if not future.done():
                future.set_exception(ConnectionError("server closed"))
        self.pending.clear()

    async def request(self, payload: Dict) -> Tuple[Dict, float]:
        """Send one request; returns (response, latency_ms)."""
        future = asyncio.get_running_loop().create_future()
        self.pending[payload.get("id")] = future
        async with self.lock:
            self.writer.write(encode_line(payload))
            await self.writer.drain()
        start = time.perf_counter()
        response = await future
        return response, (time.perf_counter() - start) * 1e3

    async def close(self) -> None:
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionResetError, OSError):  # pragma: no cover
            pass
        if self.reader_task is not None:
            self.reader_task.cancel()


async def _traced_request(client: "_Client", payload: Dict,
                          spans: Optional[SpanRecorder],
                          ) -> Tuple[Dict, float, Optional[str]]:
    """Send one request, spanned: returns (response, latency, trace id).

    With a span recorder, the client opens a local-root ``request``
    span whose trace context rides on the wire — the server adopts it,
    so the client-chosen trace id is the join key across the loadgen,
    front-end, and worker span dumps.
    """
    if spans is None:
        response, latency_ms = await client.request(payload)
        return response, latency_ms, None
    root = spans.start("request", attrs={"verb": payload.get("verb"),
                                         "network": payload.get("network"),
                                         "id": payload.get("id")})
    response, latency_ms = await client.request(
        dict(payload, trace=wire_context(root)))
    ok = bool(response.get("ok"))
    duration_ms = root.end("ok" if ok else "error")
    spans.close_trace(root.trace_id, duration_ms, error=not ok)
    return response, latency_ms, root.trace_id


def _note_response(stats: _Stats, payload: Dict, response: Dict,
                   latency_ms: float, shadow,
                   trace_id: Optional[str] = None) -> None:
    stats.latencies_ms.append(latency_ms)
    verb = payload["verb"]
    stats.verbs[verb] = stats.verbs.get(verb, 0) + 1
    if not response.get("ok"):
        stats.errors += 1
        if len(stats.error_samples) < 5:
            stats.error_samples.append(response)
        return
    result = response.get("result", {})
    mode = result.get("repair_mode")
    if mode == "noop":
        stats.noops += 1
    elif mode == "repair":
        stats.repairs += 1
    elif mode == "rebuild":
        stats.rebuilds += 1
    if shadow is not None:
        expected = shadow.handle(parse_request(dict(payload)))
        stats.verified += 1
        if expected.get("schedule_hash") != result.get("schedule_hash"):
            stats.mismatches += 1
            if len(stats.mismatch_samples) < 5:
                # Request ids ARE the plan's stream positions (see
                # build_plan), so "index" pinpoints the request in a
                # re-run of the same seed.
                sample = {"index": payload.get("id"),
                          "network": payload.get("network"),
                          "verb": verb,
                          "expected": expected.get("schedule_hash"),
                          "got": result.get("schedule_hash")}
                if trace_id:
                    sample["trace_id"] = trace_id
                stats.mismatch_samples.append(sample)


async def _run_closed_loop(client: _Client, plan: List[Dict],
                           stats: _Stats, shadow, spans) -> None:
    by_network: Dict[str, List[Dict]] = {}
    for payload in plan:
        by_network.setdefault(payload["network"], []).append(payload)

    async def drive(requests: List[Dict]) -> None:
        for payload in requests:
            response, latency_ms, trace_id = await _traced_request(
                client, payload, spans)
            _note_response(stats, payload, response, latency_ms, shadow,
                           trace_id)

    await asyncio.gather(*(drive(requests)
                           for requests in by_network.values()))


async def _run_open_loop(client: _Client, plan: List[Dict],
                         stats: _Stats, shadow, spans, rate: float,
                         seed: int) -> None:
    rng = np.random.default_rng(seed + 1)
    gaps = rng.exponential(1.0 / rate, size=len(plan))
    tasks: List[asyncio.Task] = []
    ordered: Dict[str, asyncio.Task] = {}

    async def fire(payload: Dict, after: Optional[asyncio.Task]) -> None:
        response, latency_ms, trace_id = await _traced_request(
            client, payload, spans)
        if after is not None:
            # Shadow execution must respect per-network request order
            # even if responses interleave across networks.
            await after
        _note_response(stats, payload, response, latency_ms, shadow,
                       trace_id)

    for payload, gap in zip(plan, gaps):
        task = asyncio.ensure_future(
            fire(payload, ordered.get(payload["network"])
                 if shadow is not None else None))
        ordered[payload["network"]] = task
        tasks.append(task)
        await asyncio.sleep(gap)
    await asyncio.gather(*tasks)


async def _run(options: LoadgenOptions) -> Dict:
    shadow = None
    if options.verify:
        from repro.service.executor import ServiceExecutor

        shadow = ServiceExecutor(worker_index=-1)
    plan = build_plan(options)
    stats = _Stats()
    spans = (SpanRecorder(threshold_ms=options.trace_threshold_ms,
                          process="loadgen")
             if options.trace_out else None)
    client = await _Client.connect(options)
    started = time.perf_counter()
    try:
        if options.rate > 0:
            await _run_open_loop(client, plan, stats, shadow, spans,
                                 options.rate, options.seed)
        else:
            await _run_closed_loop(client, plan, stats, shadow, spans)
        wall_s = time.perf_counter() - started
        status_response, _ = await client.request(
            {"id": "loadgen-status", "verb": "status"})
    finally:
        await client.close()
    service_status = status_response.get("result", {}) \
        if status_response.get("ok") else {}
    latencies = sorted(stats.latencies_ms)
    report = {
        "requests": len(plan),
        "networks": options.networks,
        "seed": options.seed,
        "mix": options.mix,
        "rate": options.rate,
        "wall_s": round(wall_s, 3),
        "rps": round(len(plan) / wall_s, 2) if wall_s > 0 else None,
        "verbs": dict(sorted(stats.verbs.items())),
        "errors": stats.errors,
        "error_samples": stats.error_samples,
        "reschedule_modes": {"noop": stats.noops,
                             "repair": stats.repairs,
                             "rebuild": stats.rebuilds},
        "latency_ms": {
            "mean": round(float(np.mean(latencies)), 3) if latencies
            else None,
            "p50": round(_percentile(latencies, 0.50), 3),
            "p90": round(_percentile(latencies, 0.90), 3),
            "p99": round(_percentile(latencies, 0.99), 3),
            "max": round(latencies[-1], 3) if latencies else None,
        },
        "histogram": _histogram(latencies),
        "service": {
            "repair_fallbacks": service_status.get("repair_fallbacks"),
            "cache": service_status.get("cache"),
            "networks": service_status.get("networks"),
        },
    }
    if options.verify:
        report["verify"] = {"checked": stats.verified,
                            "mismatches": stats.mismatches,
                            "mismatch_samples": stats.mismatch_samples}
    if spans is not None:
        written = spans.export_jsonl(options.trace_out)
        report["trace"] = {
            "out": options.trace_out,
            "spans": written,
            "kept_traces": spans.kept_traces,
            "dropped_traces": spans.dropped_traces,
            "threshold_ms": spans.threshold_ms,
            "exemplars": [
                {"trace_id": trace_id,
                 "duration_ms": round(root_ms, 3),
                 "verb": (root.get("attrs") or {}).get("verb"),
                 "network": (root.get("attrs") or {}).get("network")}
                for trace_id, root_ms, root in spans.slowest(5)],
        }
    return report


def format_report(report: Dict) -> str:
    """Human-readable load report (the JSON is the machine artifact)."""
    lines = [
        f"loadgen: {report['requests']} request(s) over "
        f"{report['networks']} network(s), seed {report['seed']}",
        f"  wall {report['wall_s']:.3f} s  ->  {report['rps']} req/s "
        f"({'open loop @ %.1f/s' % report['rate'] if report['rate'] > 0 else 'closed loop'})",
        f"  verbs: " + ", ".join(f"{verb}={count}" for verb, count
                                 in report["verbs"].items()),
        f"  reschedule modes: "
        + ", ".join(f"{mode}={count}" for mode, count
                    in report["reschedule_modes"].items()),
        f"  errors: {report['errors']}",
        f"  latency ms: p50={report['latency_ms']['p50']} "
        f"p90={report['latency_ms']['p90']} "
        f"p99={report['latency_ms']['p99']} "
        f"max={report['latency_ms']['max']}",
    ]
    if report.get("service", {}).get("cache"):
        cache = report["service"]["cache"]
        total = cache.get("hit_total", 0) + cache.get("miss_total", 0)
        rate = (cache.get("hit_total", 0) / total) if total else 0.0
        lines.append(f"  service cache: {cache.get('hit_total', 0)} hits /"
                     f" {cache.get('miss_total', 0)} misses "
                     f"({rate:.1%} hit rate), "
                     f"fallbacks={report['service']['repair_fallbacks']}")
    if "verify" in report:
        verify = report["verify"]
        lines.append(f"  verify: {verify['checked']} checked, "
                     f"{verify['mismatches']} mismatch(es)")
        # A mismatch without the offending request is undebuggable:
        # name the stream index, verb, network, and both hashes.
        for sample in verify.get("mismatch_samples", []):
            where = (f"  verify MISMATCH request #{sample.get('index')} "
                     f"{sample.get('verb')} {sample.get('network')}: "
                     f"expected {sample.get('expected')} "
                     f"got {sample.get('got')}")
            if sample.get("trace_id"):
                where += f" (trace {sample['trace_id']})"
            lines.append(where)
        shown = len(verify.get("mismatch_samples", []))
        if verify["mismatches"] > shown:
            lines.append(f"  ... {verify['mismatches'] - shown} more "
                         f"mismatch(es) not sampled")
    if report.get("trace"):
        trace = report["trace"]
        lines.append(f"  trace: kept {trace['kept_traces']} / dropped "
                     f"{trace['dropped_traces']} trace(s) "
                     f"(threshold {trace['threshold_ms']} ms) "
                     f"-> {trace['out']}")
        for exemplar in trace.get("exemplars", []):
            lines.append(f"    slow {exemplar['trace_id']}  "
                         f"{exemplar['duration_ms']:.1f} ms  "
                         f"{exemplar['verb']} {exemplar['network']}")
    lines.append("  latency histogram:")
    lines.append(format_histogram(report["histogram"]))
    return "\n".join(lines)


def run_loadgen(options: LoadgenOptions) -> Dict:
    """Blocking entry point for ``repro loadgen``; returns the report."""
    return asyncio.run(_run(options))
