"""Metrics over schedules and experiment outcomes.

These back the paper's evaluation plots: schedulable ratio (Figs. 1-3),
the distribution of transmissions per channel (Figs. 4, 9), the channel
reuse hop-count distribution (Fig. 5), and box-plot statistics for PDR
(Fig. 8).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

from repro.core.schedule import Schedule
from repro.core.scheduler import SchedulingResult
from repro.network.graphs import ChannelReuseGraph


def schedulable_ratio(results: Iterable[SchedulingResult]) -> float:
    """Fraction of flow sets that were schedulable."""
    results = list(results)
    if not results:
        return 0.0
    return sum(1 for r in results if r.schedulable) / len(results)


def tx_per_cell_distribution(schedule: Schedule) -> Dict[int, int]:
    """Histogram: number of occupied cells holding k transmissions.

    ``{1: 640, 2: 80, 3: 4}`` means 640 cells carry a single transmission
    (no reuse), 80 cells carry two concurrent transmissions, etc.
    """
    histogram: Counter = Counter()
    for _, _, transmissions in schedule.occupied_cells():
        histogram[len(transmissions)] += 1
    return dict(histogram)


def tx_per_cell_fractions(schedules: Iterable[Schedule]) -> Dict[int, float]:
    """Pooled Tx/channel histogram over many schedules, as fractions."""
    total: Counter = Counter()
    for schedule in schedules:
        total.update(tx_per_cell_distribution(schedule))
    count = sum(total.values())
    if count == 0:
        return {}
    return {k: v / count for k, v in sorted(total.items())}


def cell_min_reuse_hops(transmissions, reuse_graph: ChannelReuseGraph,
                        ) -> Optional[int]:
    """Minimum sender→receiver reuse-hop distance within one shared cell.

    For every ordered pair of distinct transmissions (u→v, x→y) in the
    cell, the relevant distances are hop(u, y) and hop(x, v); the cell's
    figure of merit is the smallest of these (the paper's "minimum channel
    reuse hop count among senders and receivers of concurrent
    transmissions").  Returns None for cells without reuse.
    """
    if len(transmissions) < 2:
        return None
    minimum = None
    for i, first in enumerate(transmissions):
        for second in transmissions[i + 1:]:
            u, v = first.request.sender, first.request.receiver
            x, y = second.request.sender, second.request.receiver
            for a, b in ((u, y), (x, v)):
                distance = reuse_graph.hop_distance(a, b)
                if distance < 0:
                    continue  # unreachable = infinitely far, never the min
                if minimum is None or distance < minimum:
                    minimum = distance
    return minimum


def reuse_hop_distribution(schedule: Schedule,
                           reuse_graph: ChannelReuseGraph) -> Dict[int, int]:
    """Histogram of per-shared-cell minimum reuse hop counts (Fig. 5)."""
    histogram: Counter = Counter()
    for _, _, transmissions in schedule.reused_cells():
        hops = cell_min_reuse_hops(transmissions, reuse_graph)
        if hops is not None:
            histogram[hops] += 1
    return dict(histogram)


def reuse_hop_fractions(schedules: Iterable[Schedule],
                        reuse_graph: ChannelReuseGraph) -> Dict[int, float]:
    """Pooled reuse hop-count histogram over many schedules, as fractions."""
    total: Counter = Counter()
    for schedule in schedules:
        total.update(reuse_hop_distribution(schedule, reuse_graph))
    count = sum(total.values())
    if count == 0:
        return {}
    return {k: v / count for k, v in sorted(total.items())}


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary used for the paper's PDR box plots."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    n: int

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "BoxStats":
        """Compute the summary from a sample (linear interpolation quartiles)."""
        data = sorted(values)
        if not data:
            raise ValueError("values must be non-empty")

        def quantile(q: float) -> float:
            index = q * (len(data) - 1)
            low = int(index)
            high = min(low + 1, len(data) - 1)
            weight = index - low
            return data[low] * (1 - weight) + data[high] * weight

        return cls(minimum=data[0], q1=quantile(0.25), median=quantile(0.5),
                   q3=quantile(0.75), maximum=data[-1], n=len(data))

    def row(self) -> str:
        """One-line human-readable rendering."""
        return (f"min={self.minimum:.3f} q1={self.q1:.3f} "
                f"med={self.median:.3f} q3={self.q3:.3f} "
                f"max={self.maximum:.3f} (n={self.n})")
