"""End-to-end latency analysis over a finished schedule.

Besides schedulability (did every instance meet its deadline), operators
care *how early* packets arrive: control loops gain margin from low
latency, and channel reuse's whole point is to compress schedules.  This
module derives per-instance end-to-end latency — release to the last
scheduled slot of the instance — straight from the schedule, with
distribution summaries for comparing NR / RA / RC.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.schedule import Schedule
from repro.flows.flow import FlowSet
from repro.mac.tsch import SLOT_DURATION_MS


@dataclass(frozen=True)
class InstanceLatency:
    """Latency of one flow instance.

    Attributes:
        flow_id: The flow.
        instance: Release index.
        release_slot: When the packet became available.
        finish_slot: The last slot occupied by the instance (worst-case
            arrival: the retransmission slot of the final hop).
        latency_slots: ``finish - release + 1`` — the number of slots
            from release until the packet is guaranteed delivered.
        deadline_slots: The flow's relative deadline, for slack.
    """

    flow_id: int
    instance: int
    release_slot: int
    finish_slot: int
    latency_slots: int
    deadline_slots: int

    @property
    def latency_ms(self) -> float:
        """Latency in milliseconds (10 ms WirelessHART slots)."""
        return self.latency_slots * SLOT_DURATION_MS

    @property
    def slack_slots(self) -> int:
        """Slots to spare before the deadline."""
        return self.deadline_slots - self.latency_slots


def instance_latencies(schedule: Schedule,
                       flow_set: FlowSet) -> List[InstanceLatency]:
    """Compute the latency of every flow instance in a schedule.

    Raises:
        ValueError: If the schedule contains no entries for a flow in the
            set (the schedule and flow set do not match).
    """
    finish: Dict[Tuple[int, int], int] = {}
    for entry in schedule.entries:
        key = (entry.request.flow_id, entry.request.instance)
        finish[key] = max(finish.get(key, -1), entry.slot)

    flows = {f.flow_id: f for f in flow_set}
    latencies = []
    for (flow_id, instance), finish_slot in sorted(finish.items()):
        flow = flows.get(flow_id)
        if flow is None:
            raise ValueError(f"schedule references unknown flow {flow_id}")
        release = instance * flow.period_slots
        latencies.append(InstanceLatency(
            flow_id=flow_id, instance=instance, release_slot=release,
            finish_slot=finish_slot,
            latency_slots=finish_slot - release + 1,
            deadline_slots=flow.deadline_slots))
    return latencies


@dataclass(frozen=True)
class LatencySummary:
    """Distribution summary of instance latencies (in slots)."""

    mean: float
    median: float
    p95: float
    maximum: int
    min_slack: int
    n: int

    @classmethod
    def from_latencies(cls, latencies: List[InstanceLatency]
                       ) -> "LatencySummary":
        """Summarize a latency population."""
        if not latencies:
            raise ValueError("no latencies to summarize")
        values = sorted(l.latency_slots for l in latencies)
        n = len(values)

        def quantile(q: float) -> float:
            index = q * (n - 1)
            low = int(index)
            high = min(low + 1, n - 1)
            weight = index - low
            return values[low] * (1 - weight) + values[high] * weight

        return cls(
            mean=sum(values) / n,
            median=quantile(0.5),
            p95=quantile(0.95),
            maximum=values[-1],
            min_slack=min(l.slack_slots for l in latencies),
            n=n,
        )


def per_flow_worst_latency(latencies: List[InstanceLatency]
                           ) -> Dict[int, int]:
    """Worst-case latency (slots) per flow across its instances."""
    worst: Dict[int, int] = defaultdict(int)
    for latency in latencies:
        worst[latency.flow_id] = max(worst[latency.flow_id],
                                     latency.latency_slots)
    return dict(worst)
