"""Metrics and summaries over schedules and simulation outcomes."""

from repro.analysis.energy import (
    NodeEnergy,
    RadioPowerProfile,
    network_lifetime_days,
    superframe_energy,
)
from repro.analysis.latency import (
    InstanceLatency,
    LatencySummary,
    instance_latencies,
    per_flow_worst_latency,
)

from repro.analysis.response_time import (
    ResponseTimeResult,
    analyze_flow_set,
    is_schedulable_by_analysis,
    response_time_bound,
    slot_demand,
)
from repro.analysis.metrics import (
    BoxStats,
    cell_min_reuse_hops,
    reuse_hop_distribution,
    reuse_hop_fractions,
    schedulable_ratio,
    tx_per_cell_distribution,
    tx_per_cell_fractions,
)

__all__ = [
    "BoxStats",
    "InstanceLatency",
    "LatencySummary",
    "NodeEnergy",
    "RadioPowerProfile",
    "instance_latencies",
    "network_lifetime_days",
    "per_flow_worst_latency",
    "superframe_energy",
    "ResponseTimeResult",
    "analyze_flow_set",
    "is_schedulable_by_analysis",
    "response_time_bound",
    "slot_demand",
    "cell_min_reuse_hops",
    "reuse_hop_distribution",
    "reuse_hop_fractions",
    "schedulable_ratio",
    "tx_per_cell_distribution",
    "tx_per_cell_fractions",
]
