"""Energy analysis of a schedule on CC2420-class hardware.

WSAN deployments live or die by battery life.  Given per-device slot
tables (:mod:`repro.mac.superframe`), this module estimates per-node
radio energy per hyperperiod and projected lifetime, using the CC2420 /
TelosB current profile that both testbeds in the paper use.

The model is deliberately slot-granular: a transmit slot costs the TX
current for the frame airtime plus RX current for the ACK window; a
receive slot costs RX current for the guard + frame + ACK turnaround;
sleep slots cost the sleep current.  Idle listening within active slots
is folded into the slot windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.mac.superframe import SlotAction, Superframe
from repro.mac.tsch import SLOT_DURATION_S, SlotTiming


@dataclass(frozen=True)
class RadioPowerProfile:
    """Current draw of a CC2420-class transceiver at 3 V.

    Defaults follow the CC2420 datasheet (typical values).
    """

    tx_current_ma: float = 17.4
    rx_current_ma: float = 19.7
    sleep_current_ma: float = 0.001  # 1 uA deep sleep
    supply_voltage_v: float = 3.0
    timing: SlotTiming = SlotTiming()

    def transmit_slot_charge_mc(self) -> float:
        """Charge (millicoulombs) consumed by one transmit slot."""
        tx_seconds = self.timing.max_packet_us * 1e-6
        ack_rx_seconds = (self.timing.rx_ack_delay_us
                          + self.timing.ack_duration_us) * 1e-6
        active = tx_seconds * self.tx_current_ma \
            + ack_rx_seconds * self.rx_current_ma
        idle = (SLOT_DURATION_S - tx_seconds - ack_rx_seconds) \
            * self.sleep_current_ma
        return active + idle

    def receive_slot_charge_mc(self) -> float:
        """Charge consumed by one receive slot (guard + frame + ACK)."""
        rx_seconds = (self.timing.tx_offset_us + self.timing.max_packet_us
                      + self.timing.rx_ack_delay_us) * 1e-6
        tx_ack_seconds = self.timing.ack_duration_us * 1e-6
        active = rx_seconds * self.rx_current_ma \
            + tx_ack_seconds * self.tx_current_ma
        idle = (SLOT_DURATION_S - rx_seconds - tx_ack_seconds) \
            * self.sleep_current_ma
        return active + idle

    def sleep_slot_charge_mc(self) -> float:
        """Charge consumed by one sleep slot."""
        return SLOT_DURATION_S * self.sleep_current_ma


@dataclass(frozen=True)
class NodeEnergy:
    """Energy accounting for one node over one superframe.

    Attributes:
        node_id: The device.
        transmit_slots / receive_slots / sleep_slots: Slot counts.
        charge_mc: Total charge per superframe, in millicoulombs.
    """

    node_id: int
    transmit_slots: int
    receive_slots: int
    sleep_slots: int
    charge_mc: float

    def average_current_ma(self, superframe_slots: int) -> float:
        """Mean current over the superframe."""
        duration_s = superframe_slots * SLOT_DURATION_S
        if duration_s == 0:
            return 0.0
        return self.charge_mc / 1000.0 / duration_s * 1000.0

    def lifetime_days(self, superframe_slots: int,
                      battery_mah: float = 2500.0) -> float:
        """Projected lifetime on a battery (AA pair ≈ 2500 mAh)."""
        current = self.average_current_ma(superframe_slots)
        if current <= 0.0:
            return float("inf")
        return battery_mah / current / 24.0


def superframe_energy(superframe: Superframe,
                      profile: RadioPowerProfile = RadioPowerProfile(),
                      ) -> Dict[int, NodeEnergy]:
    """Per-node energy over one superframe for every active device."""
    result = {}
    tx_charge = profile.transmit_slot_charge_mc()
    rx_charge = profile.receive_slot_charge_mc()
    sleep_charge = profile.sleep_slot_charge_mc()
    for node_id, table in superframe.tables.items():
        transmit = sum(1 for e in table.entries
                       if e.action is SlotAction.TRANSMIT)
        receive = sum(1 for e in table.entries
                      if e.action is SlotAction.RECEIVE)
        sleep = superframe.num_slots - transmit - receive
        charge = (transmit * tx_charge + receive * rx_charge
                  + sleep * sleep_charge)
        result[node_id] = NodeEnergy(
            node_id=node_id, transmit_slots=transmit,
            receive_slots=receive, sleep_slots=sleep, charge_mc=charge)
    return result


def network_lifetime_days(superframe: Superframe,
                          profile: RadioPowerProfile = RadioPowerProfile(),
                          battery_mah: float = 2500.0) -> float:
    """Lifetime of the network = lifetime of its busiest node."""
    energies = superframe_energy(superframe, profile)
    if not energies:
        return float("inf")
    return min(e.lifetime_days(superframe.num_slots, battery_mah)
               for e in energies.values())
