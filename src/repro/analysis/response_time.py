"""Analytic end-to-end delay bounds for no-reuse WirelessHART scheduling.

The paper's scheduling lineage (its reference [24], Saifullah et al.,
"Real-Time Scheduling for WirelessHART Networks", RTSS 2010) bounds the
worst-case end-to-end delay of a flow under fixed-priority, no-reuse
scheduling by accounting two ways a higher-priority flow can postpone a
lower-priority one:

* **transmission conflicts** — a higher-priority transmission sharing a
  node with the flow's route blocks that slot outright; and
* **channel contention** — with ``m`` channels, a slot is unusable when
  ``m`` higher-priority transmissions (conflict-free or not) occupy all
  channels, which is bounded multiprocessor-style by ``1/m`` of the
  higher-priority workload.

This module implements that style of bound as a *sufficient*
schedulability test: a response-time fixed point

    R_i = C_i + Σ_{j<i} Δ_ij(R_i) + ceil( (1/m) Σ_{j<i} W_j(R_i) )

where ``C_i`` is the flow's own slot demand, ``W_j(x)`` the higher-
priority workload released in a window of length ``x``, and ``Δ_ij(x)``
the conflicting portion of that workload.  The bound is deliberately
conservative (both terms may count the same transmission); its value is
an analytic admission test that needs no schedule construction — the
tool a network manager runs before accepting a new flow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.transmissions import ATTEMPTS_PER_LINK
from repro.flows.flow import Flow, FlowSet


def slot_demand(flow: Flow, attempts_per_link: int = ATTEMPTS_PER_LINK) -> int:
    """``C_i``: dedicated slots one release of the flow needs."""
    if not flow.has_route:
        raise ValueError(f"flow {flow.flow_id} has no route")
    return flow.num_hops * attempts_per_link


def conflicting_demand(flow: Flow, other: Flow,
                       attempts_per_link: int = ATTEMPTS_PER_LINK) -> int:
    """Slots of one release of ``other`` that conflict with ``flow``.

    A transmission conflicts when its link shares a node with any link on
    ``flow``'s route (half-duplex constraint).
    """
    nodes = set()
    for u, v in flow.links:
        nodes.add(u)
        nodes.add(v)
    conflicting = sum(1 for x, y in other.links
                      if x in nodes or y in nodes)
    return conflicting * attempts_per_link


def workload_bound(other: Flow, window: int,
                   attempts_per_link: int = ATTEMPTS_PER_LINK) -> int:
    """``W_j(x)``: slots flow ``j`` can demand within a window of ``x``."""
    releases = math.ceil(window / other.period_slots) + 1
    return releases * slot_demand(other, attempts_per_link)


def conflict_bound(flow: Flow, other: Flow, window: int,
                   attempts_per_link: int = ATTEMPTS_PER_LINK) -> int:
    """``Δ_ij(x)``: conflicting slots ``j`` can impose within ``x``."""
    releases = math.ceil(window / other.period_slots) + 1
    return releases * conflicting_demand(flow, other, attempts_per_link)


@dataclass(frozen=True)
class ResponseTimeResult:
    """Outcome of the response-time analysis for one flow.

    Attributes:
        flow_id: The flow.
        bound_slots: The converged response-time bound, or None when the
            iteration exceeded the deadline (deemed unschedulable).
        deadline_slots: The flow's relative deadline.
    """

    flow_id: int
    bound_slots: Optional[int]
    deadline_slots: int

    @property
    def schedulable(self) -> bool:
        """Whether the bound proves the flow meets its deadline."""
        return (self.bound_slots is not None
                and self.bound_slots <= self.deadline_slots)


def response_time_bound(flow_set: FlowSet, index: int,
                        num_channels: int,
                        attempts_per_link: int = ATTEMPTS_PER_LINK,
                        max_iterations: int = 100) -> ResponseTimeResult:
    """Fixed-point response-time bound for the flow at priority ``index``.

    Args:
        flow_set: Routed flows in priority order (highest first).
        index: Position of the flow under analysis.
        num_channels: ``m``, the number of channels (no channel reuse).
        attempts_per_link: Source-routing attempt count.
        max_iterations: Safety bound on the fixed-point iteration.

    Returns:
        A :class:`ResponseTimeResult`; ``bound_slots`` is None when the
        iteration diverges past the deadline.
    """
    if num_channels <= 0:
        raise ValueError("num_channels must be positive")
    flow = flow_set[index]
    higher = [flow_set[j] for j in range(index)]
    own = slot_demand(flow, attempts_per_link)

    response = own
    for _ in range(max_iterations):
        conflicts = sum(conflict_bound(flow, other, response,
                                       attempts_per_link)
                        for other in higher)
        workload = sum(workload_bound(other, response, attempts_per_link)
                       for other in higher)
        contention = math.ceil(workload / num_channels)
        updated = own + conflicts + contention
        if updated == response:
            return ResponseTimeResult(flow.flow_id, response,
                                      flow.deadline_slots)
        if updated > flow.deadline_slots:
            return ResponseTimeResult(flow.flow_id, None,
                                      flow.deadline_slots)
        response = updated
    return ResponseTimeResult(flow.flow_id, None, flow.deadline_slots)


def analyze_flow_set(flow_set: FlowSet, num_channels: int,
                     attempts_per_link: int = ATTEMPTS_PER_LINK,
                     ) -> Dict[int, ResponseTimeResult]:
    """Run the response-time test on every flow (priority order assumed).

    Returns:
        ``{flow_id: result}``.  The flow set is analytically schedulable
        iff every result is.
    """
    return {flow_set[i].flow_id:
            response_time_bound(flow_set, i, num_channels,
                                attempts_per_link)
            for i in range(len(flow_set))}


def is_schedulable_by_analysis(flow_set: FlowSet, num_channels: int,
                               attempts_per_link: int = ATTEMPTS_PER_LINK,
                               ) -> bool:
    """Sufficient test: True proves the DM/no-reuse scheduler succeeds.

    False is inconclusive — the constructive scheduler may still find a
    schedule; the bound double-counts conflict and contention.
    """
    return all(result.schedulable
               for result in analyze_flow_set(
                   flow_set, num_channels, attempts_per_link).values())
