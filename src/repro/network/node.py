"""Network device model for a WirelessHART WSAN.

A WirelessHART network is composed of *field devices* (sensors and
actuators with half-duplex IEEE 802.15.4 radios), *access points* wired to
the *gateway*, and a *network manager* co-located with the gateway.  The
network manager computes routes and the transmission schedule centrally;
the over-the-air participants are the field devices and access points.

In this library a node is a lightweight value object; connectivity lives in
:class:`~repro.network.topology.Topology` as per-channel PRR matrices.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class NodeRole(enum.Enum):
    """Role a device plays in the network."""

    FIELD_DEVICE = "field_device"
    ACCESS_POINT = "access_point"
    GATEWAY = "gateway"


@dataclass(frozen=True)
class Position:
    """A 3-D position in meters.

    Testbed layouts place nodes on floors of a building; ``z`` encodes the
    floor height so that the propagation model can account for inter-floor
    attenuation.
    """

    x: float
    y: float
    z: float = 0.0

    def distance_to(self, other: "Position") -> float:
        """Euclidean distance to another position, in meters."""
        return ((self.x - other.x) ** 2
                + (self.y - other.y) ** 2
                + (self.z - other.z) ** 2) ** 0.5

    def as_tuple(self) -> Tuple[float, float, float]:
        """Return the coordinates as an ``(x, y, z)`` tuple."""
        return (self.x, self.y, self.z)


@dataclass(frozen=True)
class Node:
    """A single WSAN device.

    Attributes:
        node_id: Dense integer identifier, unique within a topology.
        role: Whether the node is a field device, access point, or gateway.
        position: Physical placement (used by the propagation substrate and
            the simulator's SINR ground truth).
        name: Optional human-readable label.
    """

    node_id: int
    role: NodeRole = NodeRole.FIELD_DEVICE
    position: Optional[Position] = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError(f"node_id must be non-negative, got {self.node_id}")

    @property
    def is_access_point(self) -> bool:
        """Whether this node is an access point wired to the gateway."""
        return self.role is NodeRole.ACCESS_POINT

    @property
    def is_field_device(self) -> bool:
        """Whether this node is an over-the-air field device."""
        return self.role is NodeRole.FIELD_DEVICE

    def __str__(self) -> str:
        label = self.name or f"n{self.node_id}"
        return f"{label}({self.role.value})"


@dataclass
class NeighborEntry:
    """One row of a node's neighbor table.

    WirelessHART devices maintain per-neighbor statistics — packets sent,
    packets acknowledged, per-channel quality — learned from regular data
    traffic and periodic neighbor-discovery broadcasts.  The network
    manager aggregates these in health reports (used by the detection
    policy in :mod:`repro.detection`).
    """

    neighbor_id: int
    packets_sent: int = 0
    packets_acked: int = 0
    per_channel_sent: dict = field(default_factory=dict)
    per_channel_acked: dict = field(default_factory=dict)

    def record(self, channel: int, success: bool) -> None:
        """Record the outcome of one transmission attempt to the neighbor."""
        self.packets_sent += 1
        self.per_channel_sent[channel] = self.per_channel_sent.get(channel, 0) + 1
        if success:
            self.packets_acked += 1
            self.per_channel_acked[channel] = (
                self.per_channel_acked.get(channel, 0) + 1)

    def prr(self) -> float:
        """Overall packet reception ratio toward this neighbor."""
        if self.packets_sent == 0:
            return 0.0
        return self.packets_acked / self.packets_sent

    def prr_on_channel(self, channel: int) -> float:
        """PRR restricted to a single physical channel."""
        sent = self.per_channel_sent.get(channel, 0)
        if sent == 0:
            return 0.0
        return self.per_channel_acked.get(channel, 0) / sent
