"""Network model: devices, topology (PRR matrices), derived graphs."""

from repro.network.node import NeighborEntry, Node, NodeRole, Position
from repro.network.graphs import (
    ChannelReuseGraph,
    CommunicationGraph,
    UNREACHABLE,
    all_pairs_hops,
    bfs_hops_from,
    communication_adjacency,
    reuse_adjacency,
)
from repro.network.topology import Topology

__all__ = [
    "ChannelReuseGraph",
    "CommunicationGraph",
    "NeighborEntry",
    "Node",
    "NodeRole",
    "Position",
    "Topology",
    "UNREACHABLE",
    "all_pairs_hops",
    "bfs_hops_from",
    "communication_adjacency",
    "reuse_adjacency",
]
