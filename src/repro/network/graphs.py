"""Communication and channel-reuse graphs (paper Section IV-B).

Two graphs are derived from the topology's PRR measurements:

* The **communication graph** ``G_c`` contains a bidirectional edge ``uv``
  iff ``PRR(u→v) ≥ PRR_t`` and ``PRR(v→u) ≥ PRR_t`` on **every** channel in
  use.  Routes are built on this graph; the bidirectionality requirement
  exists because each data transmission needs a link-layer ACK, and the
  all-channels requirement exists because channel hopping cycles every link
  through every channel.

* The **channel reuse graph** ``G_R`` contains a bidirectional edge ``uv``
  iff ``PRR(u→v) > 0`` or ``PRR(v→u) > 0`` on **any** channel.  Hop
  distance on this graph is the paper's proxy for interference: two
  concurrent same-channel transmissions are presumed safe when every
  sender is at least ρ hops from the other transmission's receiver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.network.topology import Topology

#: Sentinel hop distance for unreachable node pairs.
UNREACHABLE = -1


def communication_adjacency(topology: Topology,
                            prr_threshold: float = 0.9) -> np.ndarray:
    """Boolean adjacency matrix of the communication graph.

    ``adj[u, v]`` is True iff the bidirectional edge uv satisfies the
    all-channels PRR threshold.
    """
    forward = np.all(topology.prr >= prr_threshold, axis=2)
    adjacency = forward & forward.T
    np.fill_diagonal(adjacency, False)
    return adjacency


def reuse_adjacency(topology: Topology) -> np.ndarray:
    """Boolean adjacency matrix of the channel reuse graph.

    ``adj[u, v]`` is True iff PRR(u→v) or PRR(v→u) is positive on any
    channel — i.e. the nodes can hear each other at all, on any channel.
    """
    any_forward = np.any(topology.prr > 0.0, axis=2)
    adjacency = any_forward | any_forward.T
    np.fill_diagonal(adjacency, False)
    return adjacency


def bfs_hops_from(adjacency: np.ndarray, source: int) -> np.ndarray:
    """Hop counts from ``source`` to every node via BFS.

    Returns an int array where unreachable nodes get :data:`UNREACHABLE`.
    """
    n = adjacency.shape[0]
    hops = np.full(n, UNREACHABLE, dtype=np.int32)
    hops[source] = 0
    frontier = np.zeros(n, dtype=bool)
    frontier[source] = True
    distance = 0
    while frontier.any():
        distance += 1
        # All nodes adjacent to the frontier, not yet visited.
        reached = adjacency[frontier].any(axis=0) & (hops == UNREACHABLE)
        hops[reached] = distance
        frontier = reached
    return hops


def all_pairs_hops(adjacency: np.ndarray) -> np.ndarray:
    """All-pairs hop-count matrix via repeated BFS.

    O(V * (V + E)) with vectorized frontier expansion; fine for testbed
    scales (tens to low hundreds of nodes).
    """
    n = adjacency.shape[0]
    hops = np.empty((n, n), dtype=np.int32)
    for source in range(n):
        hops[source] = bfs_hops_from(adjacency, source)
    return hops


@dataclass(frozen=True)
class CommunicationGraph:
    """The graph on which routes are constructed.

    Attributes:
        adjacency: Boolean matrix; ``adjacency[u, v]`` iff edge uv exists.
        prr_threshold: The PRR_t admission threshold used to build it.
    """

    adjacency: np.ndarray
    prr_threshold: float

    @classmethod
    def from_topology(cls, topology: Topology,
                      prr_threshold: float = 0.9) -> "CommunicationGraph":
        """Build the communication graph from PRR measurements."""
        return cls(communication_adjacency(topology, prr_threshold), prr_threshold)

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self.adjacency.shape[0]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the bidirectional edge uv exists."""
        return bool(self.adjacency[u, v])

    def neighbors(self, u: int) -> List[int]:
        """Neighbors of node u."""
        return [int(v) for v in np.flatnonzero(self.adjacency[u])]

    def degree(self, u: int) -> int:
        """Degree of node u."""
        return int(self.adjacency[u].sum())

    def num_edges(self) -> int:
        """Number of undirected edges."""
        return int(self.adjacency.sum()) // 2

    def edges(self) -> List[Tuple[int, int]]:
        """All undirected edges as (u, v) with u < v."""
        us, vs = np.nonzero(np.triu(self.adjacency, k=1))
        return list(zip(us.tolist(), vs.tolist()))

    def is_connected(self, among: Optional[Sequence[int]] = None) -> bool:
        """Whether the graph (or a node subset) is connected."""
        nodes = list(among) if among is not None else list(range(self.num_nodes))
        if not nodes:
            return True
        hops = bfs_hops_from(self.adjacency, nodes[0])
        return all(hops[v] != UNREACHABLE for v in nodes)

    def largest_component(self) -> List[int]:
        """Return the node ids of the largest connected component."""
        remaining: Set[int] = set(range(self.num_nodes))
        best: List[int] = []
        while remaining:
            source = next(iter(remaining))
            hops = bfs_hops_from(self.adjacency, source)
            component = [v for v in remaining if hops[v] != UNREACHABLE]
            if len(component) > len(best):
                best = component
            remaining -= set(component)
        return sorted(best)


@dataclass(frozen=True)
class ChannelReuseGraph:
    """The graph used to gate channel reuse decisions.

    Precomputes the all-pairs hop matrix, because the scheduler queries
    pairwise reuse distances on every ``findSlot`` invocation.

    Attributes:
        adjacency: Boolean adjacency matrix.
        hops: All-pairs hop counts (UNREACHABLE where disconnected).
    """

    adjacency: np.ndarray
    hops: np.ndarray

    @classmethod
    def from_topology(cls, topology: Topology) -> "ChannelReuseGraph":
        """Build the channel reuse graph from PRR measurements."""
        adjacency = reuse_adjacency(topology)
        return cls(adjacency, all_pairs_hops(adjacency))

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self.adjacency.shape[0]

    def hop_distance(self, u: int, v: int) -> int:
        """Hop distance between u and v (:data:`UNREACHABLE` if disconnected)."""
        return int(self.hops[u, v])

    def at_least_hops_apart(self, u: int, v: int, rho: float) -> bool:
        """Whether u and v are at least ``rho`` reuse-hops apart.

        Unreachable pairs are infinitely far apart and therefore always
        satisfy the constraint.  ``rho`` may be ``math.inf``.
        """
        distance = self.hops[u, v]
        if distance == UNREACHABLE:
            return True
        return distance >= rho

    def diameter(self) -> int:
        """Network diameter λ_R: the maximum finite hop distance.

        The paper uses λ_R as the starting reuse hop count when RC first
        introduces channel reuse.  Memoized (the dataclass is frozen and
        ``hops`` never changes): RC consults it on every ρ=∞ fallback,
        and the full-matrix max was a measurable slice of ``place()``.
        """
        cached = self.__dict__.get("_diameter")
        if cached is None:
            finite = self.hops[self.hops != UNREACHABLE]
            cached = int(finite.max()) if finite.size else 0
            # Direct __dict__ write: the frozen dataclass only blocks
            # attribute assignment through __setattr__.
            self.__dict__["_diameter"] = cached
        return cached

    def effective_hops(self) -> np.ndarray:
        """Hop matrix with :data:`UNREACHABLE` mapped to a huge distance.

        Unreachable pairs are infinitely far apart for the channel
        constraint, so the vectorized kernel can compare this matrix
        against ρ directly.  Memoized like :meth:`diameter`.
        """
        cached = self.__dict__.get("_effective_hops")
        if cached is None:
            from repro.core.kernel import INFINITE_DISTANCE

            cached = np.where(self.hops == UNREACHABLE,
                              INFINITE_DISTANCE,
                              self.hops).astype(np.int32)
            self.__dict__["_effective_hops"] = cached
        return cached

    def neighbors(self, u: int) -> List[int]:
        """Neighbors of node u."""
        return [int(v) for v in np.flatnonzero(self.adjacency[u])]

    def num_edges(self) -> int:
        """Number of undirected edges."""
        return int(self.adjacency.sum()) // 2
