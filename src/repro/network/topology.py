"""Topology: devices plus measured per-channel link qualities.

The WirelessHART network manager maintains, for every directed link and
every channel in use, a Packet Reception Ratio (PRR) — the fraction of
transmission attempts that were acknowledged.  This module stores that
information densely as a numpy array of shape ``(n, n, |M|)`` so that graph
construction (:mod:`repro.network.graphs`) and the testbed generators
(:mod:`repro.testbeds`) can operate on it efficiently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.mac.channels import ChannelMap
from repro.network.node import Node, NodeRole


@dataclass
class Topology:
    """A set of nodes and their per-channel directed PRR measurements.

    Attributes:
        nodes: All devices, where ``nodes[i].node_id == i`` (dense ids).
        channel_map: The physical channels the PRR matrix covers, in
            logical order.
        prr: Array of shape ``(n, n, len(channel_map))``; ``prr[u, v, c]``
            is the PRR of directed link u→v on the c-th channel of the map.
        name: Optional label (e.g. ``"indriya"``).
    """

    nodes: List[Node]
    channel_map: ChannelMap
    prr: np.ndarray
    name: str = ""

    def __post_init__(self) -> None:
        n = len(self.nodes)
        expected = (n, n, len(self.channel_map))
        if self.prr.shape != expected:
            raise ValueError(
                f"prr has shape {self.prr.shape}, expected {expected}")
        for index, node in enumerate(self.nodes):
            if node.node_id != index:
                raise ValueError(
                    f"nodes must have dense ids: nodes[{index}].node_id "
                    f"== {node.node_id}")
        if np.any((self.prr < 0.0) | (self.prr > 1.0)):
            raise ValueError("PRR values must lie in [0, 1]")
        diagonal = self.prr[np.arange(n), np.arange(n), :]
        if np.any(diagonal != 0.0):
            raise ValueError("self-links must have zero PRR")

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of devices in the topology."""
        return len(self.nodes)

    @property
    def num_channels(self) -> int:
        """Number of channels the PRR matrix covers."""
        return len(self.channel_map)

    def node(self, node_id: int) -> Node:
        """Return the node with the given id."""
        return self.nodes[node_id]

    def access_points(self) -> List[int]:
        """Return the ids of all access-point nodes."""
        return [n.node_id for n in self.nodes if n.role is NodeRole.ACCESS_POINT]

    def field_devices(self) -> List[int]:
        """Return the ids of all field devices."""
        return [n.node_id for n in self.nodes if n.role is NodeRole.FIELD_DEVICE]

    def positions(self) -> Optional[np.ndarray]:
        """Return an ``(n, 3)`` position array, or None if any is missing."""
        if any(n.position is None for n in self.nodes):
            return None
        return np.array([n.position.as_tuple() for n in self.nodes])

    # ------------------------------------------------------------------
    # PRR accessors
    # ------------------------------------------------------------------

    def link_prr(self, u: int, v: int, physical_channel: int) -> float:
        """PRR of directed link u→v on a physical channel."""
        return float(self.prr[u, v, self.channel_map.logical(physical_channel)])

    def link_prr_all_channels(self, u: int, v: int) -> np.ndarray:
        """PRR of directed link u→v across all channels (logical order)."""
        return self.prr[u, v, :].copy()

    def min_prr(self, u: int, v: int) -> float:
        """Minimum PRR of directed link u→v over all channels."""
        return float(self.prr[u, v, :].min())

    def max_prr(self, u: int, v: int) -> float:
        """Maximum PRR of directed link u→v over all channels."""
        return float(self.prr[u, v, :].max())

    def mean_prr(self, u: int, v: int) -> float:
        """Mean PRR of directed link u→v over all channels."""
        return float(self.prr[u, v, :].mean())

    # ------------------------------------------------------------------
    # Channel restriction
    # ------------------------------------------------------------------

    def restrict_channels(self, channels: Sequence[int]) -> "Topology":
        """Return a copy of the topology restricted to the given channels.

        Args:
            channels: Physical channel numbers; must all be present in the
                current channel map.  Order defines the new logical order.
        """
        indices = [self.channel_map.logical(ch) for ch in channels]
        return Topology(
            nodes=list(self.nodes),
            channel_map=ChannelMap(tuple(channels)),
            prr=self.prr[:, :, indices].copy(),
            name=self.name,
        )

    def with_access_points(self, access_point_ids: Iterable[int]) -> "Topology":
        """Return a copy with the given nodes promoted to access points.

        All other nodes become plain field devices.  Flow-set generation in
        the paper designates the two highest-degree nodes of each flow set
        as access points.
        """
        ap_set = set(access_point_ids)
        unknown = ap_set - set(range(self.num_nodes))
        if unknown:
            raise ValueError(f"unknown node ids for access points: {sorted(unknown)}")
        new_nodes = []
        for node in self.nodes:
            role = (NodeRole.ACCESS_POINT if node.node_id in ap_set
                    else NodeRole.FIELD_DEVICE)
            new_nodes.append(Node(node.node_id, role, node.position, node.name))
        return Topology(new_nodes, self.channel_map, self.prr, self.name)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def degree(self, node_id: int, prr_threshold: float) -> int:
        """Number of neighbors reachable bidirectionally at the threshold.

        A neighbor counts if PRR ≥ threshold in both directions on *all*
        channels, mirroring the communication-graph admission rule.
        """
        forward_ok = np.all(self.prr[node_id, :, :] >= prr_threshold, axis=1)
        backward_ok = np.all(self.prr[:, node_id, :] >= prr_threshold, axis=1)
        both = forward_ok & backward_ok
        both[node_id] = False
        return int(both.sum())

    def degrees(self, prr_threshold: float) -> np.ndarray:
        """Vector of communication-graph degrees for every node."""
        return np.array([self.degree(i, prr_threshold)
                         for i in range(self.num_nodes)])

    def summary(self, prr_threshold: float = 0.9) -> Dict[str, float]:
        """Return headline statistics about the topology."""
        degs = self.degrees(prr_threshold)
        nonzero = self.prr[self.prr > 0.0]
        return {
            "num_nodes": float(self.num_nodes),
            "num_channels": float(self.num_channels),
            "mean_degree": float(degs.mean()),
            "max_degree": float(degs.max()),
            "min_degree": float(degs.min()),
            "mean_nonzero_prr": float(nonzero.mean()) if nonzero.size else 0.0,
        }
