"""repro — Conservative Channel Reuse in Real-Time Industrial WSANs.

A full-stack reproduction of Gunatilaka & Lu, "Conservative Channel Reuse
in Real-Time Industrial Wireless Sensor-Actuator Networks" (ICDCS 2018):
a WirelessHART/TSCH network model, the RC / RA / NR fixed-priority
schedulers, a SINR-based slot simulator, and the K-S-test reliability
degradation classifier, plus runners for every figure in the paper's
evaluation.

Quickstart::

    import numpy as np
    from repro import (make_indriya, prepare_network, build_workload,
                       schedule_workload, PeriodRange, TrafficType)

    topology, environment = make_indriya()
    network = prepare_network(topology, num_channels=5)
    rng = np.random.default_rng(1)
    flows = build_workload(network, num_flows=30, period_range=PeriodRange(0, 2),
                           traffic=TrafficType.PEER_TO_PEER, rng=rng)
    result = schedule_workload(network, flows, "RC")
    print(result.schedulable, result.schedule.num_reused_cells())
"""

from repro.core import (
    AggressiveReusePolicy,
    ConservativeReusePolicy,
    FixedPriorityScheduler,
    NoReusePolicy,
    Schedule,
    SchedulingResult,
    calculate_laxity,
    validate_schedule,
)
from repro.detection import (
    DetectionConfig,
    Verdict,
    build_epoch_reports,
    diagnose_epoch,
    ks_2samp,
)
from repro.experiments import (
    build_workload,
    prepare_network,
    run_detection,
    run_reliability,
    run_sweep,
    schedule_workload,
)
from repro.flows import Flow, FlowSet, PeriodRange, generate_flow_set
from repro.mac import ChannelMap
from repro.network import ChannelReuseGraph, CommunicationGraph, Topology
from repro import obs
from repro.obs import MetricsRegistry, NullRecorder, Recorder, Tracer
from repro.routing import TrafficType, assign_routes
from repro.simulator import SimulationConfig, TschSimulator, WifiInterferer
from repro.testbeds import make_indriya, make_testbed, make_wustl

__version__ = "1.0.0"

__all__ = [
    "AggressiveReusePolicy",
    "ChannelMap",
    "ChannelReuseGraph",
    "CommunicationGraph",
    "ConservativeReusePolicy",
    "DetectionConfig",
    "FixedPriorityScheduler",
    "Flow",
    "FlowSet",
    "MetricsRegistry",
    "NoReusePolicy",
    "NullRecorder",
    "PeriodRange",
    "Recorder",
    "Tracer",
    "obs",
    "Schedule",
    "SchedulingResult",
    "SimulationConfig",
    "Topology",
    "TrafficType",
    "TschSimulator",
    "Verdict",
    "WifiInterferer",
    "assign_routes",
    "build_epoch_reports",
    "build_workload",
    "calculate_laxity",
    "diagnose_epoch",
    "generate_flow_set",
    "ks_2samp",
    "make_indriya",
    "make_testbed",
    "make_wustl",
    "prepare_network",
    "run_detection",
    "run_reliability",
    "run_sweep",
    "schedule_workload",
    "validate_schedule",
    "__version__",
]
