"""WUSTL-like synthetic testbed (60 nodes, 3 floors).

The WUSTL testbed deploys ~60 TelosB motes across three floors of Bryan
Hall at Washington University in St. Louis, running the WirelessHART
protocol stack on TinyOS.  The paper's reliability experiments (Figures
8-11) run on this testbed with channels 11-14 at 0 dBm.  We reproduce the
scale and geometry; PRRs come from the propagation substrate.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.network.topology import Topology
from repro.propagation.pathloss import LogDistancePathLoss
from repro.testbeds.layout import FloorPlan
from repro.testbeds.synth import RadioEnvironment, SynthesisParams, make_testbed

#: Number of nodes in the WUSTL-like testbed.
WUSTL_NUM_NODES = 60

#: Building geometry: three floors, roughly 45 m x 25 m each.
WUSTL_PLAN = FloorPlan(num_floors=3, floor_width_m=45.0,
                       floor_depth_m=25.0, floor_height_m=4.0)

#: Default propagation parameters.  The WUSTL deployment is denser than
#: Indriya (smaller building, comparable node count), producing the
#: shorter routes that let the paper's 50-flow reliability workload stay
#: schedulable on 4 channels even without channel reuse.
WUSTL_PARAMS = SynthesisParams(pathloss=LogDistancePathLoss(
    pl_d0_db=50.0, exponent=3.5, floor_attenuation_db=16.0,
    shadowing_sigma_db=3.0))


def make_wustl(seed: int = 11, num_channels: int = 16,
               params: Optional[SynthesisParams] = None,
               ) -> Tuple[Topology, RadioEnvironment]:
    """Build the WUSTL-like testbed.

    Args:
        seed: Random seed controlling placement jitter and fading.
        num_channels: Number of 802.15.4 channels to synthesize.  The
            reliability experiments restrict to channels 11-14 afterwards
            via :meth:`repro.network.topology.Topology.restrict_channels`.
        params: Optional propagation overrides (default
            :data:`WUSTL_PARAMS`).

    Returns:
        ``(topology, environment)``.
    """
    return make_testbed(WUSTL_NUM_NODES, WUSTL_PLAN, seed,
                        num_channels, params or WUSTL_PARAMS, name="wustl")
