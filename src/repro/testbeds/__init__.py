"""Synthetic testbeds standing in for the paper's physical deployments."""

from repro.testbeds.layout import FloorPlan, grid_positions
from repro.testbeds.synth import (
    PRR_FLOOR,
    apply_neighbor_table_limit,
    RadioEnvironment,
    SynthesisParams,
    make_testbed,
    synthesize,
)
from repro.testbeds.indriya import INDRIYA_NUM_NODES, INDRIYA_PLAN, make_indriya
from repro.testbeds.wustl import WUSTL_NUM_NODES, WUSTL_PARAMS, WUSTL_PLAN, make_wustl

__all__ = [
    "FloorPlan",
    "INDRIYA_NUM_NODES",
    "INDRIYA_PLAN",
    "PRR_FLOOR",
    "RadioEnvironment",
    "SynthesisParams",
    "WUSTL_NUM_NODES",
    "WUSTL_PARAMS",
    "apply_neighbor_table_limit",
    "WUSTL_PLAN",
    "grid_positions",
    "make_indriya",
    "make_testbed",
    "make_wustl",
    "synthesize",
]
