"""Multi-floor building layouts for synthetic testbeds.

Both testbeds in the paper (Indriya at NUS, WUSTL) span three floors of an
office building, with nodes spread over each floor.  We reproduce that
geometry: nodes are placed on a jittered grid per floor, which yields the
dense-but-multi-hop connectivity characteristic of these deployments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.network.node import Position


@dataclass(frozen=True)
class FloorPlan:
    """Geometry of one building used for node placement.

    Attributes:
        num_floors: Number of floors nodes are deployed on.
        floor_width_m: Floor extent along x, in meters.
        floor_depth_m: Floor extent along y, in meters.
        floor_height_m: Vertical separation between floors, in meters.
    """

    num_floors: int
    floor_width_m: float
    floor_depth_m: float
    floor_height_m: float = 4.0

    def __post_init__(self) -> None:
        if self.num_floors <= 0:
            raise ValueError("num_floors must be positive")
        if self.floor_width_m <= 0 or self.floor_depth_m <= 0:
            raise ValueError("floor dimensions must be positive")
        if self.floor_height_m <= 0:
            raise ValueError("floor height must be positive")

    def floor_of(self, position: Position) -> int:
        """Return the floor index a position lies on."""
        return int(round(position.z / self.floor_height_m))

    def floors_crossed(self, a: Position, b: Position) -> int:
        """Number of floors separating two positions."""
        return abs(self.floor_of(a) - self.floor_of(b))


def grid_positions(num_nodes: int, plan: FloorPlan,
                   rng: np.random.Generator,
                   jitter_m: float = 2.0) -> List[Position]:
    """Place nodes on a jittered grid spread evenly across floors.

    Nodes are distributed round-robin over floors; within each floor they
    occupy a near-square grid covering the floor extent, perturbed by
    uniform jitter to avoid degenerate symmetric geometries.

    Args:
        num_nodes: Total number of nodes to place.
        plan: Building geometry.
        rng: Random generator for the jitter (pass a seeded generator for
            reproducible testbeds).
        jitter_m: Maximum absolute jitter applied to each coordinate.

    Returns:
        A list of ``num_nodes`` positions, floor-major order.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    per_floor = _split_evenly(num_nodes, plan.num_floors)
    positions: List[Position] = []
    for floor, count in enumerate(per_floor):
        if count == 0:
            continue
        columns = max(1, int(math.ceil(math.sqrt(
            count * plan.floor_width_m / plan.floor_depth_m))))
        rows = int(math.ceil(count / columns))
        x_spacing = plan.floor_width_m / columns
        y_spacing = plan.floor_depth_m / rows
        placed = 0
        for row in range(rows):
            for column in range(columns):
                if placed >= count:
                    break
                x = (column + 0.5) * x_spacing
                y = (row + 0.5) * y_spacing
                jitter_x = float(rng.uniform(-jitter_m, jitter_m))
                jitter_y = float(rng.uniform(-jitter_m, jitter_m))
                x = min(max(x + jitter_x, 0.0), plan.floor_width_m)
                y = min(max(y + jitter_y, 0.0), plan.floor_depth_m)
                positions.append(Position(x, y, floor * plan.floor_height_m))
                placed += 1
    return positions


def _split_evenly(total: int, parts: int) -> List[int]:
    """Split ``total`` into ``parts`` integers differing by at most one."""
    base = total // parts
    remainder = total % parts
    return [base + (1 if i < remainder else 0) for i in range(parts)]
