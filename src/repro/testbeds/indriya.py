"""Indriya-like synthetic testbed (80 nodes, 3 floors).

Indriya is a 3-D WSN testbed deployed across three floors of the School of
Computing at the National University of Singapore, with (at the time of
the paper) about 80 usable TelosB motes.  We reproduce its scale and
geometry; per-channel PRRs are synthesized by the propagation substrate
(see DESIGN.md §4 for the substitution rationale).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.network.topology import Topology
from repro.testbeds.layout import FloorPlan
from repro.testbeds.synth import RadioEnvironment, SynthesisParams, make_testbed

#: Number of nodes in the Indriya-like testbed.
INDRIYA_NUM_NODES = 80

#: Building geometry: three office floors, roughly 55 m x 30 m each.
INDRIYA_PLAN = FloorPlan(num_floors=3, floor_width_m=55.0,
                         floor_depth_m=30.0, floor_height_m=4.0)


def make_indriya(seed: int = 7, num_channels: int = 16,
                 params: Optional[SynthesisParams] = None,
                 ) -> Tuple[Topology, RadioEnvironment]:
    """Build the Indriya-like testbed.

    Args:
        seed: Random seed controlling placement jitter and fading; the
            default reproduces the topology used by the benchmark harness.
        num_channels: Number of 802.15.4 channels to synthesize (16 in the
            paper's topology collection).
        params: Optional propagation overrides.

    Returns:
        ``(topology, environment)``.
    """
    return make_testbed(INDRIYA_NUM_NODES, INDRIYA_PLAN, seed,
                        num_channels, params, name="indriya")
