"""Synthetic testbed generation: positions → per-channel PRR matrices.

This is the library's substitute for the physical Indriya and WUSTL
testbeds (see DESIGN.md §4).  Given node positions and a propagation
model, it synthesizes:

* a :class:`~repro.network.topology.Topology` whose per-channel PRR matrix
  has the statistical structure of a real deployment — a core of reliable
  links, a fringe of intermediate-quality links, per-channel variation
  (frequency-selective fading), and mild asymmetry; and

* a :class:`RadioEnvironment` capturing the *ground-truth* received signal
  strengths, which the discrete-event simulator uses to compute SINR under
  concurrent transmissions.  Crucially, the interference range implied by
  the RSSI model exceeds the communication range, just as on real
  hardware — this gap is exactly what makes aggressive channel reuse
  risky.

Randomness is explicit: all draws come from a caller-provided
``numpy.random.Generator``, so a (testbed, seed) pair is fully
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.mac.channels import ChannelMap
from repro.network.node import Node, NodeRole, Position
from repro.network.topology import Topology
from repro.propagation.pathloss import (
    DEFAULT_NOISE_FLOOR_DBM,
    DEFAULT_TX_POWER_DBM,
    LogDistancePathLoss,
)
from repro.propagation.prr_model import DEFAULT_FRAME_BYTES, get_prr_curve
from repro.testbeds.layout import FloorPlan, grid_positions

#: PRRs below this are clamped to exactly zero in the topology matrix.
#: The analytic PRR curve never reaches 0, but links this weak deliver no
#: packets in practice and must not create channel-reuse-graph edges.
PRR_FLOOR = 1e-3


@dataclass(frozen=True)
class RadioEnvironment:
    """Ground-truth RF environment backing a synthetic testbed.

    Attributes:
        positions: ``(n, 3)`` node coordinates in meters.
        rssi_dbm: ``(n, n, C)`` received power at v when u transmits at the
            reference power, per channel (logical order of ``channel_map``).
            The diagonal is ``-inf``.
        channel_map: Physical channels, logical order.
        tx_power_dbm: Reference transmit power used for ``rssi_dbm``.
        noise_floor_dbm: Receiver noise floor.
        frame_bytes: Data frame size assumed by the PRR model.
        grey_sigma_db: Width of the PRR curve's grey region (see
            :class:`repro.propagation.prr_model.PrrCurve`).  The same
            value must be used when simulating the testbed.
    """

    positions: np.ndarray
    rssi_dbm: np.ndarray
    channel_map: ChannelMap
    tx_power_dbm: float = DEFAULT_TX_POWER_DBM
    noise_floor_dbm: float = DEFAULT_NOISE_FLOOR_DBM
    frame_bytes: int = DEFAULT_FRAME_BYTES
    grey_sigma_db: float = 2.5

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the environment."""
        return self.rssi_dbm.shape[0]

    def prr_curve(self):
        """The SINR→PRR curve governing this environment."""
        return get_prr_curve(self.frame_bytes, self.grey_sigma_db)

    def snr_db(self, u: int, v: int, logical_channel: int) -> float:
        """Interference-free SNR of link u→v on a logical channel."""
        return float(self.rssi_dbm[u, v, logical_channel] - self.noise_floor_dbm)

    def clean_prr(self, u: int, v: int, logical_channel: int) -> float:
        """Interference-free PRR of link u→v on a logical channel."""
        return self.prr_curve()(self.snr_db(u, v, logical_channel))

    def prr_matrix(self) -> np.ndarray:
        """Full ``(n, n, C)`` interference-free PRR matrix (floored)."""
        n = self.num_nodes
        snr = self.rssi_dbm - self.noise_floor_dbm
        matrix = self.prr_curve().many(snr)
        matrix[matrix < PRR_FLOOR] = 0.0
        diagonal = np.arange(n)
        matrix[diagonal, diagonal, :] = 0.0
        return matrix


@dataclass(frozen=True)
class SynthesisParams:
    """Knobs controlling the statistical texture of a synthetic testbed.

    Attributes:
        pathloss: Distance/floor attenuation model.
        channel_fading_sigma_db: Std-dev of the static per-(link, channel)
            fading term — this is what makes PRR vary across channels, and
            hence what differentiates the communication graph (reliable on
            *all* channels) from the reuse graph (audible on *any* channel).
        asymmetry_sigma_db: Std-dev of the per-directed-link gain offset
            (hardware variation between radios), producing mildly
            asymmetric PRRs as observed on real testbeds.
        tx_power_dbm: Transmit power (0 dBm in the paper's experiments).
        noise_floor_dbm: Receiver noise floor.
        frame_bytes: Frame size for the PRR model.
        grey_sigma_db: Width of the PRR grey region (curve smoothing).
            Must equal the aggregate fading spread the simulator applies
            (``sqrt(fast² + slow²)``, 3.6 dB with the simulator defaults)
            so that measured PRRs and simulated clean-air PRRs agree.
        neighbor_table_size: Maximum neighbors a node reports to the
            network manager (WirelessHART neighbor tables are
            capacity-limited; TelosB-class stacks keep a few dozen
            entries).  A pair survives in the *measured* topology if
            either endpoint ranks the other among its strongest
            ``neighbor_table_size`` neighbors.  Weak-but-audible pairs
            beyond the cutoff stay invisible to the manager — the model
            error that makes hop-based channel reuse risky on real
            hardware.  None disables the limit.
    """

    pathloss: LogDistancePathLoss = LogDistancePathLoss(
        pl_d0_db=55.0, exponent=3.5, floor_attenuation_db=16.0,
        shadowing_sigma_db=3.0)
    channel_fading_sigma_db: float = 2.0
    asymmetry_sigma_db: float = 1.0
    tx_power_dbm: float = DEFAULT_TX_POWER_DBM
    noise_floor_dbm: float = DEFAULT_NOISE_FLOOR_DBM
    frame_bytes: int = DEFAULT_FRAME_BYTES
    grey_sigma_db: float = 3.6
    neighbor_table_size: Optional[int] = 10


def synthesize(positions: List[Position], plan: FloorPlan,
               channel_map: ChannelMap, rng: np.random.Generator,
               params: Optional[SynthesisParams] = None,
               name: str = "") -> Tuple[Topology, RadioEnvironment]:
    """Synthesize a testbed from node positions.

    Args:
        positions: Node placements (see :mod:`repro.testbeds.layout`).
        plan: Building geometry, used to count floors crossed per link.
        channel_map: Channels to synthesize PRRs for.
        rng: Seeded random generator; drives shadowing/fading draws.
        params: Propagation and fading parameters.
        name: Topology label.

    Returns:
        ``(topology, environment)`` where the topology's PRR matrix equals
        the environment's interference-free PRR matrix.
    """
    params = params or SynthesisParams()
    n = len(positions)
    num_channels = len(channel_map)
    coordinates = np.array([p.as_tuple() for p in positions])

    # Pairwise distances and floors crossed.
    deltas = coordinates[:, None, :] - coordinates[None, :, :]
    distances = np.sqrt((deltas ** 2).sum(axis=2))
    floor_indices = np.array([plan.floor_of(p) for p in positions])
    floors_crossed = np.abs(floor_indices[:, None] - floor_indices[None, :])

    # Static shadowing: symmetric per undirected link.
    shadowing = params.pathloss.draw_shadowing(rng, (n, n))
    shadowing = np.triu(shadowing, k=1)
    shadowing = shadowing + shadowing.T

    # Frequency-selective fading: symmetric per (undirected link, channel).
    fading = rng.normal(0.0, params.channel_fading_sigma_db,
                        (n, n, num_channels))
    upper = np.triu(np.ones((n, n), dtype=bool), k=1)
    fading = fading * upper[:, :, None]
    fading = fading + np.transpose(fading, (1, 0, 2))

    # Mild per-directed-link asymmetry (radio hardware variation).
    asymmetry = rng.normal(0.0, params.asymmetry_sigma_db, (n, n))
    np.fill_diagonal(asymmetry, 0.0)

    # Path loss (distance + floors), identical in both directions.
    effective = np.maximum(distances, params.pathloss.reference_distance_m)
    base_loss = (params.pathloss.pl_d0_db
                 + 10.0 * params.pathloss.exponent
                 * np.log10(effective / params.pathloss.reference_distance_m)
                 + params.pathloss.floor_attenuation_db * floors_crossed)

    loss = (base_loss + shadowing)[:, :, None] + fading + asymmetry[:, :, None]
    rssi = params.tx_power_dbm - loss
    diagonal = np.arange(n)
    rssi[diagonal, diagonal, :] = -np.inf

    environment = RadioEnvironment(
        positions=coordinates,
        rssi_dbm=rssi,
        channel_map=channel_map,
        tx_power_dbm=params.tx_power_dbm,
        noise_floor_dbm=params.noise_floor_dbm,
        frame_bytes=params.frame_bytes,
        grey_sigma_db=params.grey_sigma_db,
    )
    measured_prr = environment.prr_matrix()
    if params.neighbor_table_size is not None:
        measured_prr = apply_neighbor_table_limit(
            measured_prr, params.neighbor_table_size)
    nodes = [Node(i, NodeRole.FIELD_DEVICE, positions[i]) for i in range(n)]
    topology = Topology(nodes=nodes, channel_map=channel_map,
                        prr=measured_prr, name=name)
    return topology, environment


def apply_neighbor_table_limit(prr: np.ndarray, table_size: int) -> np.ndarray:
    """Model capacity-limited neighbor reporting.

    Each node ranks its potential neighbors by link strength (mean PRR
    over channels, best direction) and reports only the strongest
    ``table_size``.  The network manager's view keeps a pair iff either
    endpoint reported the other; all other pairs read as "never heard"
    (zero PRR) even though the ground-truth radio environment still
    couples them.

    Args:
        prr: Full measured PRR matrix ``(n, n, C)``.
        table_size: Neighbor-table capacity per node.

    Returns:
        A copy of ``prr`` with unreported pairs zeroed in both directions.
    """
    if table_size < 1:
        raise ValueError("table_size must be at least 1")
    n = prr.shape[0]
    strength = prr.mean(axis=2)
    strength = np.maximum(strength, strength.T)
    reported = np.zeros((n, n), dtype=bool)
    for node in range(n):
        order = np.argsort(-strength[node])
        kept = [v for v in order if v != node and strength[node, v] > 0.0]
        for v in kept[:table_size]:
            reported[node, v] = True
    keep = reported | reported.T
    limited = prr.copy()
    limited[~keep] = 0.0
    return limited


def make_testbed(num_nodes: int, plan: FloorPlan, seed: int,
                 num_channels: int = 16,
                 params: Optional[SynthesisParams] = None,
                 name: str = "") -> Tuple[Topology, RadioEnvironment]:
    """Convenience wrapper: place nodes on the plan and synthesize.

    Args:
        num_nodes: Number of nodes.
        plan: Building geometry.
        seed: Seed for all random draws (placement jitter + fading).
        num_channels: How many 802.15.4 channels to synthesize (from 11 up).
        params: Propagation parameters.
        name: Topology label.
    """
    rng = np.random.default_rng(seed)
    positions = grid_positions(num_nodes, plan, rng)
    channel_map = ChannelMap.first_n(num_channels)
    return synthesize(positions, plan, channel_map, rng, params, name)
