"""Reliability-degradation detection: health epochs, K-S test, classifier."""

from repro.detection.classifier import (
    DetectionConfig,
    LinkDiagnosis,
    Verdict,
    diagnose_epoch,
    diagnose_link,
    rejected_links_per_epoch,
)
from repro.detection.health import (
    EpochReport,
    LinkEpochReport,
    SAMPLES_PER_EPOCH,
    build_epoch_reports,
)
from repro.detection.kstest import (
    KsResult,
    kolmogorov_survival,
    ks_2samp,
    ks_statistic,
)

__all__ = [
    "DetectionConfig",
    "EpochReport",
    "KsResult",
    "LinkDiagnosis",
    "LinkEpochReport",
    "SAMPLES_PER_EPOCH",
    "Verdict",
    "build_epoch_reports",
    "diagnose_epoch",
    "diagnose_link",
    "kolmogorov_survival",
    "ks_2samp",
    "ks_statistic",
    "rejected_links_per_epoch",
]
