"""Two-sample Kolmogorov-Smirnov test, implemented from first principles.

The detection policy (paper Section VI) uses the two-sample K-S test
because it is distribution-free and has no minimum sample-size
requirement.  The statistic is the maximum vertical distance between the
two empirical CDFs; the p-value uses the classic asymptotic Kolmogorov
distribution with the small-sample correction of Stephens (as popularized
by *Numerical Recipes*):

    p = Q_KS( (sqrt(Ne) + 0.12 + 0.11 / sqrt(Ne)) * D ),
    Ne = m * n / (m + n),
    Q_KS(x) = 2 * sum_{k>=1} (-1)^(k-1) * exp(-2 k^2 x^2).

The implementation is cross-validated against ``scipy.stats.ks_2samp`` in
the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.obs import recorder as _obs

#: p-value histogram buckets (probability mass around common α levels).
_PVALUE_BUCKETS = (0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0)


@dataclass(frozen=True)
class KsResult:
    """Outcome of a two-sample K-S test.

    Attributes:
        statistic: The K-S statistic D (max ECDF distance), in [0, 1].
        p_value: Asymptotic p-value of the null "same distribution".
        n1: Size of the first sample.
        n2: Size of the second sample.
    """

    statistic: float
    p_value: float
    n1: int
    n2: int

    def reject(self, alpha: float = 0.05) -> bool:
        """Whether the null hypothesis is rejected at significance alpha."""
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        return self.p_value < alpha


def ks_statistic(sample1: Sequence[float], sample2: Sequence[float]) -> float:
    """Maximum distance between the two empirical CDFs."""
    if not sample1 or not sample2:
        raise ValueError("both samples must be non-empty")
    xs = sorted(sample1)
    ys = sorted(sample2)
    n1, n2 = len(xs), len(ys)
    i = j = 0
    d = 0.0
    while i < n1 and j < n2:
        if xs[i] <= ys[j]:
            value = xs[i]
        else:
            value = ys[j]
        while i < n1 and xs[i] <= value:
            i += 1
        while j < n2 and ys[j] <= value:
            j += 1
        d = max(d, abs(i / n1 - j / n2))
    return d


def kolmogorov_survival(x: float, terms: int = 100) -> float:
    """Q_KS(x): survival function of the Kolmogorov distribution.

    Monotone from 1 (at 0) to 0 (at infinity).  The alternating series
    converges extremely fast for x above ~0.3; below that the value is
    effectively 1.
    """
    if x <= 0.0:
        return 1.0
    total = 0.0
    for k in range(1, terms + 1):
        term = 2.0 * ((-1.0) ** (k - 1)) * math.exp(-2.0 * (k * x) ** 2)
        total += term
        if abs(term) < 1e-12:
            break
    return min(max(total, 0.0), 1.0)


def ks_2samp(sample1: Sequence[float], sample2: Sequence[float]) -> KsResult:
    """Two-sample K-S test with the asymptotic p-value.

    Args:
        sample1: First sample (e.g. per-epoch PRRs under channel reuse).
        sample2: Second sample (e.g. PRRs in contention-free slots).

    Returns:
        A :class:`KsResult`; call :meth:`KsResult.reject` to apply a
        significance level.

    Raises:
        ValueError: If either sample is empty.
    """
    d = ks_statistic(sample1, sample2)
    n1, n2 = len(sample1), len(sample2)
    effective = n1 * n2 / (n1 + n2)
    root = math.sqrt(effective)
    p = kolmogorov_survival((root + 0.12 + 0.11 / root) * d)
    if _obs.ENABLED:
        _obs.RECORDER.count("detection.ks_tests")
        _obs.RECORDER.observe("detection.ks_pvalue", p, _PVALUE_BUCKETS)
    return KsResult(statistic=d, p_value=p, n1=n1, n2=n2)
