"""Detection policy: is a link's degradation caused by channel reuse?

Paper Section VI.  For every link involved in channel reuse whose
reuse-slot PRR falls below the reliability threshold ``PRR_t``, compare
the PRR distribution in reuse slots against the distribution in
contention-free slots with a two-sample K-S test:

* **reject** (distributions differ) → channel reuse degrades the link;
  the network manager should reschedule it away from shared cells.
* **accept** (no significant difference) → the link is poor in *both*
  conditions, so the cause is elsewhere (e.g. external interference) and
  removing channel reuse would not help.
* **ok** → the link meets the reliability requirement under reuse; no
  action needed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.detection.health import EpochReport, LinkEpochReport
from repro.detection.kstest import KsResult, ks_2samp
from repro.obs import recorder as _obs
from repro.simulator.stats import Link


class Verdict(enum.Enum):
    """Outcome of the detection policy for one link."""

    #: Reuse-slot PRR meets the reliability requirement.
    OK = "ok"
    #: Below threshold and K-S rejects: degradation caused by channel reuse.
    REJECT = "reject"
    #: Below threshold but K-S accepts: degradation has another cause.
    ACCEPT = "accept"
    #: Not enough data to run the test (e.g. no contention-free samples).
    INSUFFICIENT_DATA = "insufficient_data"


@dataclass(frozen=True)
class DetectionConfig:
    """Parameters of the detection policy.

    Attributes:
        alpha: K-S significance level (0.05 in the paper).
        prr_threshold: Reliability requirement ``PRR_t`` (0.9).
        min_samples: Minimum samples per distribution to run the test.
    """

    alpha: float = 0.05
    prr_threshold: float = 0.9
    min_samples: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if not 0.0 < self.prr_threshold <= 1.0:
            raise ValueError("prr_threshold must be in (0, 1]")
        if self.min_samples < 1:
            raise ValueError("min_samples must be at least 1")


@dataclass(frozen=True)
class LinkDiagnosis:
    """Detection outcome for one link in one epoch.

    Attributes:
        link: The directed link.
        epoch: Epoch index the diagnosis refers to.
        verdict: Policy decision.
        reuse_prr: Pooled reuse-slot PRR (``PRR_r``).
        contention_free_prr: Pooled contention-free PRR.
        ks: The K-S result when the test ran, else None.
    """

    link: Link
    epoch: int
    verdict: Verdict
    reuse_prr: Optional[float]
    contention_free_prr: Optional[float]
    ks: Optional[KsResult] = None


def _noted(diagnosis: LinkDiagnosis) -> LinkDiagnosis:
    """Record a diagnosis with the observability layer, pass it through."""
    if _obs.ENABLED:
        recorder = _obs.RECORDER
        recorder.count("detection.diagnoses")
        recorder.count(f"detection.verdict.{diagnosis.verdict.value}")
        recorder.event(
            "ks_decision",
            link=f"{diagnosis.link[0]}->{diagnosis.link[1]}",
            epoch=diagnosis.epoch, verdict=diagnosis.verdict.value,
            reuse_prr=diagnosis.reuse_prr,
            contention_free_prr=diagnosis.contention_free_prr,
            statistic=diagnosis.ks.statistic if diagnosis.ks else None,
            p_value=diagnosis.ks.p_value if diagnosis.ks else None)
    return diagnosis


def diagnose_link(report: LinkEpochReport,
                  config: DetectionConfig = DetectionConfig(),
                  ) -> Optional[LinkDiagnosis]:
    """Apply the detection policy to one link's epoch report.

    Returns:
        A diagnosis, or None when the link was not involved in channel
        reuse this epoch (the policy only considers reuse links).
    """
    if not report.reuse_samples:
        return None
    if report.reuse_prr is None:
        return None
    if report.reuse_prr >= config.prr_threshold:
        return _noted(LinkDiagnosis(
            link=report.link, epoch=report.epoch, verdict=Verdict.OK,
            reuse_prr=report.reuse_prr,
            contention_free_prr=report.contention_free_prr))
    if (len(report.reuse_samples) < config.min_samples
            or len(report.contention_free_samples) < config.min_samples):
        return _noted(LinkDiagnosis(
            link=report.link, epoch=report.epoch,
            verdict=Verdict.INSUFFICIENT_DATA,
            reuse_prr=report.reuse_prr,
            contention_free_prr=report.contention_free_prr))

    result = ks_2samp(list(report.reuse_samples),
                      list(report.contention_free_samples))
    verdict = Verdict.REJECT if result.reject(config.alpha) else Verdict.ACCEPT
    return _noted(LinkDiagnosis(
        link=report.link, epoch=report.epoch, verdict=verdict,
        reuse_prr=report.reuse_prr,
        contention_free_prr=report.contention_free_prr, ks=result))


def diagnose_epoch(report: EpochReport,
                   config: DetectionConfig = DetectionConfig(),
                   ) -> List[LinkDiagnosis]:
    """Diagnose every reuse-involved link in one epoch."""
    diagnoses = []
    for link in sorted(report.links):
        diagnosis = diagnose_link(report.links[link], config)
        if diagnosis is not None:
            diagnoses.append(diagnosis)
    return diagnoses


def rejected_links_per_epoch(reports: Sequence[EpochReport],
                             config: DetectionConfig = DetectionConfig(),
                             ) -> Dict[int, List[Link]]:
    """Links classified as reuse-degraded, per epoch (paper Fig. 11)."""
    result = {}
    for report in reports:
        diagnoses = diagnose_epoch(report, config)
        result[report.epoch] = [d.link for d in diagnoses
                                if d.verdict is Verdict.REJECT]
    return result
