"""Health-report epochs: the data the network manager sees.

WirelessHART nodes deliver a health report to the network manager every
15 minutes (one *epoch*).  Within an epoch the manager accumulates, for
every link involved in channel reuse, a distribution of PRR samples in
reuse slots and another in contention-free slots (paper Section VI).
With a 1 s top period the paper obtains 18 samples per epoch; we mirror
that by grouping simulator repetitions into epochs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.simulator.stats import Link, SimulationStats

#: PRR samples the paper collects per 15-minute epoch.
SAMPLES_PER_EPOCH = 18


@dataclass(frozen=True)
class LinkEpochReport:
    """One link's health data for one epoch.

    Attributes:
        link: The directed link.
        epoch: Epoch index.
        reuse_samples: Per-repetition PRRs in shared (reuse) cells.
        contention_free_samples: Per-repetition PRRs in exclusive cells.
        reuse_prr: Pooled PRR over the epoch's reuse-slot attempts
            (``PRR_r`` in the paper), or None if the link never
            transmitted in a shared cell this epoch.
        contention_free_prr: Pooled contention-free PRR, or None.
    """

    link: Link
    epoch: int
    reuse_samples: Tuple[float, ...]
    contention_free_samples: Tuple[float, ...]
    reuse_prr: Optional[float]
    contention_free_prr: Optional[float]


@dataclass(frozen=True)
class EpochReport:
    """All link health data for one epoch."""

    epoch: int
    links: Dict[Link, LinkEpochReport]

    def reuse_links(self) -> List[Link]:
        """Links that transmitted in shared cells during this epoch."""
        return sorted(link for link, report in self.links.items()
                      if report.reuse_samples)


def build_epoch_report(stats: SimulationStats, epoch: int,
                       window: Optional[Tuple[int, int]] = None,
                       ) -> EpochReport:
    """Build one epoch's health report from a repetition window.

    This is the streaming entry point: the network manager simulates one
    epoch's worth of repetitions at a time and turns each batch into an
    :class:`EpochReport` directly, instead of slicing one monolithic
    simulation afterwards.

    Args:
        stats: Simulation output covering (at least) the window.
        epoch: Epoch index to stamp on the report.
        window: ``(start, end)`` repetition slice (end exclusive);
            ``None`` uses every repetition in ``stats``.
    """
    link_reports = {}
    for link in stats.links_seen():
        reuse_samples = tuple(
            stats.link_prr_samples(link, shared_cell=True,
                                   repetition_range=window))
        cf_samples = tuple(
            stats.link_prr_samples(link, shared_cell=False,
                                   repetition_range=window))
        link_reports[link] = LinkEpochReport(
            link=link,
            epoch=epoch,
            reuse_samples=reuse_samples,
            contention_free_samples=cf_samples,
            reuse_prr=stats.overall_link_prr(
                link, shared_cell=True, repetition_range=window),
            contention_free_prr=stats.overall_link_prr(
                link, shared_cell=False, repetition_range=window),
        )
    return EpochReport(epoch=epoch, links=link_reports)


def build_epoch_reports(stats: SimulationStats,
                        repetitions_per_epoch: int = SAMPLES_PER_EPOCH,
                        ) -> List[EpochReport]:
    """Group simulation repetitions into health-report epochs.

    Args:
        stats: Simulation output.
        repetitions_per_epoch: Schedule executions per epoch (18 matches
            the paper's sampling density).

    Returns:
        One :class:`EpochReport` per complete epoch; a trailing partial
        epoch is dropped.
    """
    if repetitions_per_epoch <= 0:
        raise ValueError("repetitions_per_epoch must be positive")
    num_epochs = len(stats.repetitions) // repetitions_per_epoch
    return [
        build_epoch_report(stats, epoch,
                           (epoch * repetitions_per_epoch,
                            (epoch + 1) * repetitions_per_epoch))
        for epoch in range(num_epochs)
    ]


class StreamingHealthMonitor:
    """Per-epoch verdict accumulation with warm-up and re-test hysteresis.

    The offline detection experiment classifies each epoch in isolation;
    a live network manager must not: a single-epoch K-S rejection can be
    a sampling artifact, and remediation (rebuilding the schedule)
    perturbs every link's environment, so verdicts from before an action
    say nothing about the schedule running after it.  The monitor
    therefore:

    * ignores everything during an initial **warm-up** (the paper's
      manager also waits for reports to accumulate before acting);
    * requires ``confirm_epochs`` *consecutive* identical verdicts
      before confirming a link (REJECT streak → reuse victim, ACCEPT
      streak → external/other cause);
    * after :meth:`note_action`, enters a **cooldown** during which all
      streaks restart from zero — the re-test hysteresis that prevents
      the manager from thrashing on pre-action evidence.

    Besides the two K-S verdicts the monitor tracks a third streak:
    **suspects** — links whose reuse-slot PRR is deeply degraded
    (below ``suspect_prr``) but that never transmit in contention-free
    cells, so the K-S test has no baseline to compare against
    (``INSUFFICIENT_DATA``).  The paper's policy cannot attribute their
    degradation; a live manager still has to act on them, and moving
    such a link out of shared cells is simultaneously the remedy (if
    reuse was the cause) and the missing experiment (afterwards the link
    produces exactly the contention-free baseline it lacked).

    Links that stop appearing in an epoch's diagnoses (e.g. they were
    rescheduled out of shared cells) drop their streaks.
    """

    def __init__(self, warmup_epochs: int = 1, confirm_epochs: int = 2,
                 cooldown_epochs: int = 1, suspect_prr: float = 0.7):
        if warmup_epochs < 0 or cooldown_epochs < 0:
            raise ValueError("warm-up/cooldown must be non-negative")
        if confirm_epochs < 1:
            raise ValueError("confirm_epochs must be at least 1")
        if not 0.0 <= suspect_prr <= 1.0:
            raise ValueError("suspect_prr must be in [0, 1]")
        self.warmup_epochs = warmup_epochs
        self.confirm_epochs = confirm_epochs
        self.cooldown_epochs = cooldown_epochs
        self.suspect_prr = suspect_prr
        self._reject_streak: Dict[Link, int] = {}
        self._accept_streak: Dict[Link, int] = {}
        self._suspect_streak: Dict[Link, int] = {}
        self._last_action_epoch: Optional[int] = None

    def in_warmup(self, epoch: int) -> bool:
        """Whether the epoch falls inside the initial warm-up."""
        return epoch < self.warmup_epochs

    def in_cooldown(self, epoch: int) -> bool:
        """Whether the epoch falls inside a post-action cooldown."""
        return (self._last_action_epoch is not None
                and epoch - self._last_action_epoch <= self.cooldown_epochs)

    def actionable(self, epoch: int) -> bool:
        """Whether confirmed findings may trigger remediation this epoch."""
        return not (self.in_warmup(epoch) or self.in_cooldown(epoch))

    def observe(self, diagnoses) -> None:
        """Fold one epoch's diagnoses into the verdict streaks.

        Args:
            diagnoses: ``LinkDiagnosis`` sequence from
                :func:`repro.detection.classifier.diagnose_epoch`.
        """
        from repro.detection.classifier import Verdict

        rejected: Set[Link] = set()
        accepted: Set[Link] = set()
        suspect: Set[Link] = set()
        for diagnosis in diagnoses:
            if diagnosis.verdict is Verdict.REJECT:
                rejected.add(diagnosis.link)
            elif diagnosis.verdict is Verdict.ACCEPT:
                accepted.add(diagnosis.link)
            elif (diagnosis.verdict is Verdict.INSUFFICIENT_DATA
                  and diagnosis.reuse_prr is not None
                  and diagnosis.reuse_prr < self.suspect_prr):
                suspect.add(diagnosis.link)
        self._reject_streak = {
            link: self._reject_streak.get(link, 0) + 1 for link in rejected}
        self._accept_streak = {
            link: self._accept_streak.get(link, 0) + 1 for link in accepted}
        self._suspect_streak = {
            link: self._suspect_streak.get(link, 0) + 1 for link in suspect}

    def confirmed_reuse_victims(self) -> List[Link]:
        """Links whose REJECT streak reached the confirmation length."""
        return sorted(link for link, streak in self._reject_streak.items()
                      if streak >= self.confirm_epochs)

    def confirmed_external(self) -> List[Link]:
        """Links whose ACCEPT streak reached the confirmation length.

        These are degraded in reuse *and* contention-free slots alike —
        the K-S test attributes the damage to something other than
        channel reuse (external interference, fading), so rescheduling
        them away from shared cells would not help.
        """
        return sorted(link for link, streak in self._accept_streak.items()
                      if streak >= self.confirm_epochs)

    def confirmed_suspects(self) -> List[Link]:
        """Deeply degraded reuse-only links with a confirmed streak.

        These sustained ``reuse_prr < suspect_prr`` for the confirmation
        length while never producing a contention-free baseline — the
        K-S test cannot attribute them, so they are *suspects*, not
        confirmed victims.  Barring them from reuse is the only move
        that both remediates and completes the missing experiment.
        """
        return sorted(link for link, streak in self._suspect_streak.items()
                      if streak >= self.confirm_epochs)

    def streak_counts(self) -> Dict[str, int]:
        """Current streak-table sizes, for telemetry/time-series feeds.

        Returns:
            ``{"reject": N, "accept": N, "suspect": N}`` — how many
            links currently hold a non-zero streak of each kind (not
            yet necessarily confirmed).
        """
        return {
            "reject": len(self._reject_streak),
            "accept": len(self._accept_streak),
            "suspect": len(self._suspect_streak),
        }

    def note_action(self, epoch: int) -> None:
        """Record that remediation ran; restart streaks and cool down."""
        self._last_action_epoch = epoch
        self._reject_streak.clear()
        self._accept_streak.clear()
        self._suspect_streak.clear()
