"""Health-report epochs: the data the network manager sees.

WirelessHART nodes deliver a health report to the network manager every
15 minutes (one *epoch*).  Within an epoch the manager accumulates, for
every link involved in channel reuse, a distribution of PRR samples in
reuse slots and another in contention-free slots (paper Section VI).
With a 1 s top period the paper obtains 18 samples per epoch; we mirror
that by grouping simulator repetitions into epochs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.simulator.stats import Link, SimulationStats

#: PRR samples the paper collects per 15-minute epoch.
SAMPLES_PER_EPOCH = 18


@dataclass(frozen=True)
class LinkEpochReport:
    """One link's health data for one epoch.

    Attributes:
        link: The directed link.
        epoch: Epoch index.
        reuse_samples: Per-repetition PRRs in shared (reuse) cells.
        contention_free_samples: Per-repetition PRRs in exclusive cells.
        reuse_prr: Pooled PRR over the epoch's reuse-slot attempts
            (``PRR_r`` in the paper), or None if the link never
            transmitted in a shared cell this epoch.
        contention_free_prr: Pooled contention-free PRR, or None.
    """

    link: Link
    epoch: int
    reuse_samples: Tuple[float, ...]
    contention_free_samples: Tuple[float, ...]
    reuse_prr: Optional[float]
    contention_free_prr: Optional[float]


@dataclass(frozen=True)
class EpochReport:
    """All link health data for one epoch."""

    epoch: int
    links: Dict[Link, LinkEpochReport]

    def reuse_links(self) -> List[Link]:
        """Links that transmitted in shared cells during this epoch."""
        return sorted(link for link, report in self.links.items()
                      if report.reuse_samples)


def build_epoch_reports(stats: SimulationStats,
                        repetitions_per_epoch: int = SAMPLES_PER_EPOCH,
                        ) -> List[EpochReport]:
    """Group simulation repetitions into health-report epochs.

    Args:
        stats: Simulation output.
        repetitions_per_epoch: Schedule executions per epoch (18 matches
            the paper's sampling density).

    Returns:
        One :class:`EpochReport` per complete epoch; a trailing partial
        epoch is dropped.
    """
    if repetitions_per_epoch <= 0:
        raise ValueError("repetitions_per_epoch must be positive")
    num_epochs = len(stats.repetitions) // repetitions_per_epoch
    links = stats.links_seen()
    reports = []
    for epoch in range(num_epochs):
        window = (epoch * repetitions_per_epoch,
                  (epoch + 1) * repetitions_per_epoch)
        link_reports = {}
        for link in links:
            reuse_samples = tuple(
                stats.link_prr_samples(link, shared_cell=True,
                                       repetition_range=window))
            cf_samples = tuple(
                stats.link_prr_samples(link, shared_cell=False,
                                       repetition_range=window))
            link_reports[link] = LinkEpochReport(
                link=link,
                epoch=epoch,
                reuse_samples=reuse_samples,
                contention_free_samples=cf_samples,
                reuse_prr=stats.overall_link_prr(
                    link, shared_cell=True, repetition_range=window),
                contention_free_prr=stats.overall_link_prr(
                    link, shared_cell=False, repetition_range=window),
            )
        reports.append(EpochReport(epoch=epoch, links=link_reports))
    return reports
