"""Schedule validation and differential fuzzing.

* :mod:`repro.validate.audit` — the independent full-schedule auditor
  (:func:`audit_schedule`), re-deriving the paper's correctness contract
  for a finished schedule.
* :mod:`repro.validate.fuzz` — the seeded differential fuzzer
  (:func:`run_fuzz`) asserting scalar/vector kernel and stepwise/fused
  RC equivalence on random networks, auditing every schedule, and
  cross-checking simulator invariants.
"""

from repro.validate.audit import (AuditReport, Violation, audit_schedule)
from repro.validate.fuzz import FuzzCaseResult, FuzzReport, run_fuzz

__all__ = [
    "AuditReport",
    "Violation",
    "audit_schedule",
    "FuzzCaseResult",
    "FuzzReport",
    "run_fuzz",
]
