"""Independent full-schedule auditor (the paper's correctness contract).

The schedulers *construct* schedules under the Section V-A constraints;
this module *re-derives* those constraints for a finished schedule from
first principles, sharing no code with the placement hot paths it
audits.  For every placed transmission it checks:

* **Transmission-conflict freedom** — no two transmissions in a slot
  share a node (half-duplex radios, Section V-A constraint 1);
* **Release / deadline satisfaction** — every attempt sits inside its
  instance's ``[release, deadline]`` window;
* **Precedence** — an instance's attempts occupy strictly increasing
  slots in hop-major, attempt-minor order (source routing, Section VII);
* **Completeness** — a schedulable result placed every expected attempt
  of every release exactly once (against a fresh
  :func:`~repro.core.transmissions.expand_instance` expansion);
* **The ρ-hop channel constraint** — for every *shared* cell, the
  effective reuse distance (the minimum over occupant pairs of
  ``min(hops[u, y], hops[x, v])`` on G_R) is reported and flagged when
  it falls below the policy's floor ρ_t (Algorithm 1's weakest
  admissible constraint);
* **Bookkeeping cross-checks** — the busy matrix, per-cell occupancy
  lanes, used-offset bitmasks, per-slot entry lists, and the vectorized
  kernel's incremental link-distance stacks must all agree with the
  entry list.  This subsumes :meth:`repro.core.schedule.Schedule
  .validate_basic` but returns structured violations instead of
  asserting.

The auditor is the acceptance gate of the differential fuzzer
(:mod:`repro.validate.fuzz`), the ``repro validate`` CLI command, and
the network manager's post-rebuild rollback check
(:mod:`repro.manager.loop`).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.kernel import INFINITE_DISTANCE
from repro.core.schedule import Schedule
from repro.core.transmissions import ATTEMPTS_PER_LINK, expand_instance
from repro.flows.flow import FlowSet
from repro.network.graphs import UNREACHABLE, ChannelReuseGraph

#: Directed link type used throughout the manager.
Link = Tuple[int, int]

#: Hard cap on collected violations: a corrupt schedule should produce
#: a diagnosable artifact, not an unbounded dump.
MAX_VIOLATIONS = 200


@dataclass(frozen=True)
class Violation:
    """One audited invariant that did not hold.

    Attributes:
        kind: Machine-matchable category — one of ``bounds``,
            ``node_conflict``, ``window``, ``precedence``,
            ``completeness``, ``rho_floor``, ``barred_reuse``,
            ``busy_matrix``, ``occupancy``, ``link_state``.
        message: Human-readable diagnostic with the precise location.
        slot / offset / flow_id: Location fields when meaningful.
    """

    kind: str
    message: str
    slot: Optional[int] = None
    offset: Optional[int] = None
    flow_id: Optional[int] = None

    def to_dict(self) -> Dict:
        """JSON-serializable form (location fields omitted when unset)."""
        payload: Dict = {"kind": self.kind, "message": self.message}
        for key in ("slot", "offset", "flow_id"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        return payload


@dataclass
class AuditReport:
    """Outcome of auditing one schedule.

    Attributes:
        num_entries: Transmissions audited.
        num_shared_cells: Cells holding more than one transmission.
        rho_floor: The floor the shared cells were checked against.
        cell_rho: Effective reuse distance of every shared cell —
            ``math.inf`` when every occupant pair is mutually
            unreachable on G_R.
        violations: Everything that failed, in discovery order (capped
            at :data:`MAX_VIOLATIONS`).
        truncated: Whether the violation list hit the cap.
    """

    num_entries: int
    num_shared_cells: int
    rho_floor: float
    cell_rho: Dict[Tuple[int, int], float] = field(default_factory=dict)
    violations: List[Violation] = field(default_factory=list)
    truncated: bool = False

    @property
    def ok(self) -> bool:
        """Whether every audited invariant held."""
        return not self.violations

    def min_effective_rho(self) -> Optional[float]:
        """The tightest effective ρ over all shared cells (None if no
        cell is shared)."""
        if not self.cell_rho:
            return None
        return min(self.cell_rho.values())

    def kinds(self) -> List[str]:
        """Sorted distinct violation kinds (test/diagnostic helper)."""
        return sorted({v.kind for v in self.violations})

    def to_dict(self) -> Dict:
        """JSON-serializable form (∞ serializes as None)."""
        min_rho = self.min_effective_rho()
        return {
            "ok": self.ok,
            "num_entries": self.num_entries,
            "num_shared_cells": self.num_shared_cells,
            "rho_floor": (None if self.rho_floor == math.inf
                          else self.rho_floor),
            "min_effective_rho": (
                None if min_rho is None or min_rho == math.inf
                else min_rho),
            "cell_rho": {
                f"{slot},{offset}": (None if rho == math.inf else rho)
                for (slot, offset), rho in sorted(self.cell_rho.items())},
            "violations": [v.to_dict() for v in self.violations],
            "truncated": self.truncated,
        }

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        if self.ok:
            min_rho = self.min_effective_rho()
            rho_note = ("no shared cells" if min_rho is None else
                        f"min effective rho "
                        f"{'inf' if min_rho == math.inf else int(min_rho)}")
            return (f"audit OK: {self.num_entries} transmissions, "
                    f"{self.num_shared_cells} shared cells, {rho_note}")
        head = (f"audit FAILED: {len(self.violations)} violation(s)"
                f"{' (truncated)' if self.truncated else ''} over "
                f"{self.num_entries} transmissions")
        lines = [head] + [f"  [{v.kind}] {v.message}"
                          for v in self.violations[:10]]
        if len(self.violations) > 10:
            lines.append(f"  ... and {len(self.violations) - 10} more")
        return "\n".join(lines)


class _Collector:
    """Accumulates violations up to the cap."""

    def __init__(self, report: AuditReport):
        self.report = report

    def add(self, kind: str, message: str, slot: Optional[int] = None,
            offset: Optional[int] = None,
            flow_id: Optional[int] = None) -> None:
        if len(self.report.violations) >= MAX_VIOLATIONS:
            self.report.truncated = True
            return
        self.report.violations.append(
            Violation(kind=kind, message=message, slot=slot, offset=offset,
                      flow_id=flow_id))


def _pair_distance(reuse_graph: ChannelReuseGraph, a: int, b: int) -> float:
    """Reuse-graph hop distance with unreachable mapped to ∞."""
    hops = reuse_graph.hop_distance(a, b)
    return math.inf if hops == UNREACHABLE else float(hops)


def _audit_placements(schedule: Schedule, collect: _Collector) -> None:
    """Bounds, per-slot node conflicts, and window satisfaction —
    re-derived from the raw entry list alone."""
    nodes_in_slot: Dict[int, Dict[int, str]] = {}
    for entry in schedule.entries:
        request = entry.request
        if not 0 <= entry.slot < schedule.num_slots:
            collect.add("bounds", f"{request}: slot {entry.slot} outside "
                        f"[0, {schedule.num_slots})", slot=entry.slot,
                        flow_id=request.flow_id)
            continue
        if not 0 <= entry.offset < schedule.num_offsets:
            collect.add("bounds", f"{request}: offset {entry.offset} "
                        f"outside [0, {schedule.num_offsets})",
                        slot=entry.slot, offset=entry.offset,
                        flow_id=request.flow_id)
            continue
        for node in (request.sender, request.receiver):
            if not 0 <= node < schedule.num_nodes:
                collect.add("bounds", f"{request}: node {node} outside "
                            f"[0, {schedule.num_nodes})",
                            flow_id=request.flow_id)
        seen = nodes_in_slot.setdefault(entry.slot, {})
        for node in (request.sender, request.receiver):
            other = seen.get(node)
            if other is not None:
                collect.add(
                    "node_conflict",
                    f"slot {entry.slot}: node {node} used by both "
                    f"{other} and {request}", slot=entry.slot,
                    flow_id=request.flow_id)
            seen[node] = str(request)
        if entry.slot < request.release_slot:
            collect.add(
                "window", f"{request}: slot {entry.slot} before release "
                f"{request.release_slot}", slot=entry.slot,
                flow_id=request.flow_id)
        if entry.slot > request.deadline_slot:
            collect.add(
                "window", f"{request}: slot {entry.slot} after deadline "
                f"{request.deadline_slot}", slot=entry.slot,
                flow_id=request.flow_id)


def _audit_precedence(schedule: Schedule, collect: _Collector) -> None:
    """Attempts of one release must occupy strictly increasing slots in
    hop-major, attempt-minor order."""
    by_instance: Dict[Tuple[int, int], List] = {}
    for entry in schedule.entries:
        key = (entry.request.flow_id, entry.request.instance)
        by_instance.setdefault(key, []).append(entry)
    for (flow_id, instance), entries in sorted(by_instance.items()):
        ordered = sorted(
            entries, key=lambda e: (e.request.hop_index, e.request.attempt))
        for earlier, later in zip(ordered, ordered[1:]):
            if later.slot <= earlier.slot:
                collect.add(
                    "precedence",
                    f"F{flow_id}[{instance}]: {later.request} at slot "
                    f"{later.slot} does not follow {earlier.request} at "
                    f"slot {earlier.slot}", slot=later.slot,
                    flow_id=flow_id)


def _audit_completeness(schedule: Schedule, flow_set: FlowSet,
                        attempts_per_link: int, expect_complete: bool,
                        collect: _Collector) -> None:
    """Placed attempts vs a fresh expansion of every release.

    When ``expect_complete`` is False (a partial schedule from an
    unschedulable run) only *unexpected* and *duplicated* attempts are
    flagged; missing ones are the expected failure mode.
    """
    hyperperiod = flow_set.hyperperiod()
    expected = Counter()
    for flow in flow_set:
        for instance in flow.instances(hyperperiod):
            expected.update(expand_instance(instance, attempts_per_link))
    placed = Counter(entry.request for entry in schedule.entries)
    for request, count in sorted(
            (placed - expected).items(), key=lambda item: str(item[0])):
        kind = "unexpected" if request not in expected else "duplicate"
        collect.add(
            "completeness",
            f"{request}: placed {count} extra time(s) ({kind} for this "
            f"flow set)", flow_id=request.flow_id)
    if expect_complete:
        for request, count in sorted(
                (expected - placed).items(), key=lambda item: str(item[0])):
            collect.add(
                "completeness",
                f"{request}: missing {count} placement(s)",
                flow_id=request.flow_id)


def _audit_reuse(schedule: Schedule, reuse_graph: ChannelReuseGraph,
                 rho_floor: float, barred: frozenset,
                 report: AuditReport, collect: _Collector) -> None:
    """Effective ρ of every shared cell, the floor check, and the
    barred-link exclusivity check."""
    for slot, offset, transmissions in schedule.occupied_cells():
        if barred and len(transmissions) > 1:
            for entry in transmissions:
                if entry.request.link in barred:
                    collect.add(
                        "barred_reuse",
                        f"cell ({slot},{offset}): barred link "
                        f"{entry.request.link} shares the cell",
                        slot=slot, offset=offset,
                        flow_id=entry.request.flow_id)
        if len(transmissions) < 2:
            continue
        effective = math.inf
        for i, first in enumerate(transmissions):
            u, v = first.request.sender, first.request.receiver
            for second in transmissions[i + 1:]:
                x, y = second.request.sender, second.request.receiver
                effective = min(effective,
                                _pair_distance(reuse_graph, u, y),
                                _pair_distance(reuse_graph, x, v))
        report.cell_rho[(slot, offset)] = effective
        if effective < rho_floor:
            collect.add(
                "rho_floor",
                f"cell ({slot},{offset}): effective rho "
                f"{'inf' if effective == math.inf else int(effective)} "
                f"below floor {rho_floor}", slot=slot, offset=offset)
    report.num_shared_cells = len(report.cell_rho)


def _audit_bookkeeping(schedule: Schedule, collect: _Collector) -> None:
    """Busy matrix, occupancy arrays, used-offset masks, and per-slot
    entry lists vs the entry list (subsumes ``validate_basic``)."""
    entries = schedule.entries
    busy_check = np.zeros((schedule.num_nodes, schedule.num_slots),
                          dtype=bool)
    counts_check = np.zeros((schedule.num_slots, schedule.num_offsets),
                            dtype=np.int64)
    cell_order: Dict[Tuple[int, int], List] = {}
    slot_order: Dict[int, List[int]] = {}
    for index, entry in enumerate(entries):
        if not (0 <= entry.slot < schedule.num_slots
                and 0 <= entry.offset < schedule.num_offsets):
            continue  # already reported as a bounds violation
        busy_check[entry.request.sender, entry.slot] = True
        busy_check[entry.request.receiver, entry.slot] = True
        counts_check[entry.slot, entry.offset] += 1
        cell_order.setdefault((entry.slot, entry.offset), []).append(entry)
        slot_order.setdefault(entry.slot, []).append(index)

    if not np.array_equal(busy_check, schedule.busy_matrix()):
        diff = np.argwhere(busy_check != schedule.busy_matrix())
        node, slot = (int(diff[0][0]), int(diff[0][1]))
        collect.add(
            "busy_matrix",
            f"busy matrix disagrees with entries at (node {node}, "
            f"slot {slot}) and {len(diff) - 1} more place(s)", slot=slot)

    occ_count, occ_senders, occ_receivers = schedule.occupancy()
    if not np.array_equal(counts_check, occ_count):
        diff = np.argwhere(counts_check != occ_count)
        slot, offset = (int(diff[0][0]), int(diff[0][1]))
        collect.add(
            "occupancy",
            f"occupancy count disagrees with entries in cell "
            f"({slot},{offset}): entries say {counts_check[slot, offset]}, "
            f"array says {int(occ_count[slot, offset])}; "
            f"{len(diff) - 1} more cell(s)", slot=slot, offset=offset)
    for (slot, offset), cell_entries in sorted(cell_order.items()):
        for lane, entry in enumerate(cell_entries):
            if lane >= occ_senders.shape[2]:
                break  # count mismatch already reported above
            sender = int(occ_senders[slot, offset, lane])
            receiver = int(occ_receivers[slot, offset, lane])
            if (sender, receiver) != entry.request.link:
                collect.add(
                    "occupancy",
                    f"cell ({slot},{offset}) lane {lane}: occupancy "
                    f"records link {(sender, receiver)} but entry is "
                    f"{entry.request}", slot=slot, offset=offset,
                    flow_id=entry.request.flow_id)

    for slot in range(schedule.num_slots):
        expected_mask = 0
        for offset in range(schedule.num_offsets):
            if counts_check[slot, offset]:
                expected_mask |= 1 << offset
        actual = {offset for offset in schedule.used_offsets(slot)}
        expected = {offset for offset in range(schedule.num_offsets)
                    if expected_mask & (1 << offset)}
        if actual != expected:
            collect.add(
                "occupancy",
                f"slot {slot}: used-offset mask says {sorted(actual)} but "
                f"entries occupy {sorted(expected)}", slot=slot)
        if schedule._slot_entries.get(slot, []) != slot_order.get(slot, []):
            collect.add(
                "occupancy",
                f"slot {slot}: per-slot entry list disagrees with the "
                f"entry list", slot=slot)


def _audit_link_state(schedule: Schedule, collect: _Collector) -> None:
    """The kernel's incremental per-link distance stacks vs a fresh
    full recomputation from the occupancy arrays."""
    state = schedule._link_state
    if state is None or state.count == 0:
        return
    counts, occ_senders, occ_receivers = schedule.occupancy()
    capacity = occ_senders.shape[2]
    occupied = (np.arange(capacity) < counts[..., None]
                if capacity else None)
    for (sender, receiver), lane in sorted(state.index.items()):
        if capacity and counts.any():
            pair = np.minimum(state.hops[sender, occ_receivers],
                              state.hops[occ_senders, receiver])
            expected = np.where(occupied, pair,
                                INFINITE_DISTANCE).min(axis=2)
        else:
            expected = np.full((schedule.num_slots, schedule.num_offsets),
                               INFINITE_DISTANCE, dtype=np.int32)
        actual = state.dist[:, :, lane]
        if not np.array_equal(expected, actual):
            diff = np.argwhere(expected != actual)
            slot, offset = (int(diff[0][0]), int(diff[0][1]))
            collect.add(
                "link_state",
                f"link ({sender},{receiver}): incremental distance for "
                f"cell ({slot},{offset}) is {int(actual[slot, offset])}, "
                f"recomputation gives {int(expected[slot, offset])}; "
                f"{len(diff) - 1} more cell(s)", slot=slot, offset=offset)
            continue
        best_expected = expected.max(axis=1)
        if not np.array_equal(best_expected, state.best[:, lane]):
            slot = int(np.argwhere(
                best_expected != state.best[:, lane])[0][0])
            collect.add(
                "link_state",
                f"link ({sender},{receiver}): best-distance row stale at "
                f"slot {slot}", slot=slot)


def audit_schedule(schedule: Schedule,
                   reuse_graph: ChannelReuseGraph,
                   rho_floor: float,
                   flow_set: Optional[FlowSet] = None,
                   attempts_per_link: int = ATTEMPTS_PER_LINK,
                   expect_complete: bool = True,
                   barred_links: Iterable[Link] = ()) -> AuditReport:
    """Audit a finished schedule against the paper's correctness contract.

    Args:
        schedule: The schedule to audit.
        reuse_graph: G_R — hop distances gate the channel constraint.
        rho_floor: The weakest reuse hop count any placement may have
            used (ρ_t for RA / RC; any shared cell below it is flagged).
        flow_set: The routed flows the schedule was built from; enables
            the precedence-completeness checks.  ``None`` audits the
            schedule standalone (placement, reuse, and bookkeeping
            checks only — precedence within each (flow, instance) group
            is still checked from the entries themselves).
        attempts_per_link: Source-routing expansion factor used when the
            schedule was built (completeness check).
        expect_complete: Set False for the partial schedule of an
            unschedulable run — missing placements are then not flagged.
        barred_links: Links that must not share any cell (the manager's
            accumulated no-reuse set; both directions are enforced).

    Returns:
        An :class:`AuditReport`; ``report.ok`` is the verdict.
    """
    if reuse_graph.num_nodes != schedule.num_nodes:
        raise ValueError("reuse graph size does not match the schedule")
    report = AuditReport(num_entries=len(schedule), num_shared_cells=0,
                         rho_floor=rho_floor)
    collect = _Collector(report)
    barred = frozenset(link for u, v in barred_links
                       for link in ((u, v), (v, u)))

    _audit_placements(schedule, collect)
    _audit_precedence(schedule, collect)
    if flow_set is not None:
        _audit_completeness(schedule, flow_set, attempts_per_link,
                            expect_complete, collect)
    _audit_reuse(schedule, reuse_graph, rho_floor, barred, report, collect)
    _audit_bookkeeping(schedule, collect)
    _audit_link_state(schedule, collect)
    return report
