"""Seeded differential fuzzing of the scheduling and simulation paths.

PRs 2–3 forked every hot path: placements run through a scalar oracle,
a vectorized kernel, and a fused RC descent, and the simulator runs
with or without a :class:`~repro.simulator.conditions.Conditions`
overlay.  This harness generates random synthetic networks + flow sets
and, for each case:

* asserts **bit-identical schedules** across the forked placement
  paths — scalar vs. vector kernels for NR / RA / RC, and additionally
  stepwise vs. fused RC descent for both ``rho_reset`` modes (the fused
  path is only taken with the vector kernel and observability off, so
  a vector-kernel run inside ``obs.recording()`` pins the stepwise
  loop);
* runs the independent auditor (:func:`repro.validate.audit
  .audit_schedule`) over every produced schedule — an audit failure's
  artifact embeds a decision-provenance slice for the violating cells
  (the case is replayed under a live
  :class:`~repro.obs.provenance.ProvenanceRecorder` and decisions
  touching a violation's slot or flow are kept);
* asserts **bit-identical provenance streams** between the scalar and
  vector kernels for NR / RA / RC, and that recording provenance does
  not perturb the schedule itself;
* differentially exercises the **incremental repair scheduler**
  (:mod:`repro.core.repair`) on a schedulable result: a deterministic
  victim link is evicted and re-placed via warm-start repair under both
  the scalar and vector kernels (bit-identical repaired schedules
  required), a successful repair must pass the full auditor with the
  victim barred from reuse, the input schedule must come back
  untouched, and a ρ-escalation repair must audit clean at the raised
  floor; when repair fails placement, the designed fallback — the full
  barrier rebuild — is run and its product audited instead, so a
  placement failure can never silently escape correctness coverage;
* cross-checks simulator invariants on a schedulable result:
  deliveries never exceed releases per flow, the observability counters
  ``sim.attempts`` / ``sim.successes`` / ``sim.deliveries`` equal the
  :class:`~repro.simulator.stats.SimulationStats` totals (with and
  without dark nodes), an enabled recorder does not perturb results,
  and an empty ``Conditions()`` overlay is equivalent to no overlay;
* asserts **bit-identical simulation statistics** between the
  slot-driven oracle and the batched event engine
  (:mod:`repro.simulator.events`) — clean and under every overlay axis
  (dark senders, an interferer burst, per-pair drift + reuse boost) —
  and that the event engine's results are invariant to its
  repetition-chunk size.

Everything is derived from ``(seed, case_index)``, so a failing case's
JSON artifact pins the exact network, workload, and draw sequence:
re-running ``run_fuzz`` with the same seed and enough cases replays it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import kernel as _kernel
from repro.core.ra import DEFAULT_RHO_T
from repro.core.rc import (ConservativeReusePolicy, RHO_RESET_FLOW,
                           RHO_RESET_TRANSMISSION)
from repro.core.scheduler import FixedPriorityScheduler, SchedulingResult
from repro.experiments.common import (PreparedNetwork, build_workload,
                                      make_policy, prepare_network)
from repro.flows.flow import FlowSet
from repro.flows.generator import PeriodRange
from repro.obs import recorder as _obs
from repro.obs.provenance import ProvenanceRecorder
from repro.obs.recorder import Recorder
from repro.routing.shortest_path import NoRouteError
from repro.routing.traffic import TrafficType
from repro.network.node import Position
from repro.simulator.conditions import Conditions
from repro.simulator.engine import SimulationConfig, TschSimulator
from repro.simulator.interference import WifiInterferer
from repro.simulator.stats import SimulationStats
from repro.testbeds.layout import FloorPlan
from repro.testbeds.synth import RadioEnvironment, make_testbed
from repro.validate.audit import audit_schedule

#: Redraws allowed before a case is recorded as skipped (a draw can land
#: on a network too sparse to route the workload).
_MAX_REDRAWS = 5

#: Hyperperiods executed per simulator invariant check.
_SIM_REPETITIONS = 3


@dataclass
class FuzzCaseResult:
    """Outcome of one fuzz case.

    Attributes:
        index: Case index within the run.
        seed: The run seed (case entropy is ``default_rng([seed, index])``).
        params: The generated case parameters (for the failure artifact).
        skipped: True when no routable network could be drawn.
        failures: One dict per failed cross-check, each with a ``check``
            name and a human-readable ``detail`` (plus the audit report
            for auditor failures).
    """

    index: int
    seed: int
    params: Dict = field(default_factory=dict)
    skipped: bool = False
    failures: List[Dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every cross-check of the case passed."""
        return not self.failures

    def fail(self, check: str, detail: str, **extra) -> None:
        """Record one failed cross-check."""
        self.failures.append({"check": check, "detail": detail, **extra})

    def to_dict(self) -> Dict:
        """JSON-serializable failure artifact."""
        return {
            "index": self.index,
            "seed": self.seed,
            "params": dict(self.params),
            "skipped": self.skipped,
            "ok": self.ok,
            "failures": list(self.failures),
            "reproduce": (f"repro fuzz --cases {self.index + 1} "
                          f"--seed {self.seed}"),
        }


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzz run."""

    seed: int
    num_cases: int
    cases: List[FuzzCaseResult] = field(default_factory=list)

    @property
    def failed_cases(self) -> List[FuzzCaseResult]:
        """Cases with at least one failed cross-check."""
        return [case for case in self.cases if not case.ok]

    @property
    def num_skipped(self) -> int:
        """Cases where no routable network could be drawn."""
        return sum(1 for case in self.cases if case.skipped)

    @property
    def ok(self) -> bool:
        """Whether every executed case passed every cross-check."""
        return not self.failed_cases

    def to_dict(self) -> Dict:
        """JSON-serializable summary (failing cases in full)."""
        return {
            "ok": self.ok,
            "seed": self.seed,
            "num_cases": self.num_cases,
            "num_skipped": self.num_skipped,
            "num_failed": len(self.failed_cases),
            "failed_cases": [case.to_dict() for case in self.failed_cases],
        }

    def summary(self) -> str:
        """One-line human-readable summary."""
        verdict = "OK" if self.ok else "FAILED"
        return (f"fuzz {verdict}: {self.num_cases} cases "
                f"({self.num_skipped} skipped), "
                f"{len(self.failed_cases)} failed")


def _draw_params(rng: np.random.Generator) -> Dict:
    """Draw one case's network + workload parameters."""
    return {
        "num_nodes": int(rng.integers(10, 25)),
        "num_floors": int(rng.integers(1, 4)),
        "floor_width_m": float(rng.integers(25, 61)),
        "floor_depth_m": float(rng.integers(15, 41)),
        "topology_seed": int(rng.integers(0, 2 ** 31)),
        "num_channels": int(rng.integers(2, 9)),
        "num_flows": int(rng.integers(3, 9)),
        "min_exp": -2,
        "max_exp": int(rng.integers(-2, 1)),
        "traffic": str(rng.choice(["peer_to_peer", "centralized"])),
        "workload_seed": int(rng.integers(0, 2 ** 31)),
        "rho_t": int(rng.integers(1, 4)),
        "sim_seed": int(rng.integers(0, 2 ** 31)),
    }


def _build_case(params: Dict
                ) -> Tuple[PreparedNetwork, RadioEnvironment, FlowSet]:
    """Materialize a drawn case: testbed, prepared network, routed flows.

    Raises:
        NoRouteError / ValueError: When the drawn network cannot carry
            the drawn workload (caller redraws).
    """
    plan = FloorPlan(num_floors=params["num_floors"],
                     floor_width_m=params["floor_width_m"],
                     floor_depth_m=params["floor_depth_m"])
    topology, environment = make_testbed(
        params["num_nodes"], plan, params["topology_seed"],
        name=f"fuzz-{params['topology_seed']}")
    network = prepare_network(topology, num_channels=params["num_channels"])
    flow_set = build_workload(
        network, params["num_flows"],
        PeriodRange(params["min_exp"], params["max_exp"]),
        TrafficType(params["traffic"]),
        np.random.default_rng(params["workload_seed"]))
    return network, environment, flow_set


def _entries_signature(schedule) -> Tuple:
    """The exact placement sequence of a schedule, bit for bit."""
    return tuple((entry.request.flow_id, entry.request.instance,
                  entry.request.hop_index, entry.request.attempt,
                  entry.request.sender, entry.request.receiver,
                  entry.slot, entry.offset)
                 for entry in schedule.entries)


def _schedule_signature(result: SchedulingResult) -> Tuple:
    """Everything two equivalent scheduling runs must agree on, bit for
    bit: outcome, failure point, and the exact placement sequence."""
    return (
        result.schedulable,
        result.failed_flow,
        result.failed_instance,
        _entries_signature(result.schedule),
    )


def _stats_signature(stats: SimulationStats) -> Tuple:
    """Everything two equivalent simulation runs must agree on."""
    def bucket(counters) -> Tuple:
        return tuple(sorted(
            (key, counter.attempts, counter.successes)
            for key, counter in counters.items()))

    return (
        tuple(sorted(stats.flow_released.items())),
        tuple(sorted(stats.flow_delivered.items())),
        tuple((bucket(record.reuse), bucket(record.contention_free),
               bucket(record.channels))
              for record in stats.repetitions),
    )


def _stats_attempt_totals(stats: SimulationStats) -> Tuple[int, int]:
    """Total (attempts, successes) across the reuse and contention-free
    buckets — the totals the obs counters must match.  The per-channel
    bucket is a second view of the same attempts, not counted again."""
    attempts = successes = 0
    for record in stats.repetitions:
        for counters in (record.reuse, record.contention_free):
            for counter in counters.values():
                attempts += counter.attempts
                successes += counter.successes
    return attempts, successes


def _run_scheduler(network: PreparedNetwork, flow_set: FlowSet, policy
                   ) -> SchedulingResult:
    """One scheduling run with a fresh engine around the given policy."""
    scheduler = FixedPriorityScheduler(
        num_nodes=network.topology.num_nodes,
        num_offsets=network.num_channels,
        reuse_graph=network.reuse,
        policy=policy)
    return scheduler.run(flow_set)


#: Hard cap on the provenance slice embedded in an audit-failure
#: artifact (decisions touching the violating slots / flows).
_MAX_PROVENANCE_SLICE = 50


def _provenance_for_violations(network: PreparedNetwork, flow_set: FlowSet,
                               policy_factory: Callable, report) -> List[Dict]:
    """Replay a failing case under a live provenance recorder and keep
    the decisions that touch a violation's slot or flow — the artifact
    then says not just *what* invariant broke but *which placement
    decisions* produced the offending cells."""
    prov = ProvenanceRecorder()
    with _kernel.kernel_mode(_kernel.KERNEL_VECTOR), \
            _obs.recording(Recorder(provenance=prov)):
        _run_scheduler(network, flow_set, policy_factory())
    slots = {v.slot for v in report.violations if v.slot is not None}
    flows = {v.flow_id for v in report.violations if v.flow_id is not None}
    kept: List[Dict] = []
    for record in prov.decisions():
        placed = record.get("placed")
        if (placed and placed[0] in slots) or record.get("flow") in flows:
            kept.append(record)
            if len(kept) >= _MAX_PROVENANCE_SLICE:
                break
    return kept


def _audit_result(case: FuzzCaseResult, label: str, network: PreparedNetwork,
                  flow_set: FlowSet, result: SchedulingResult,
                  rho_floor: float,
                  policy_factory: Optional[Callable] = None) -> None:
    """Run the auditor over one scheduling result."""
    report = audit_schedule(
        result.schedule, network.reuse, rho_floor, flow_set=flow_set,
        expect_complete=result.schedulable)
    if not report.ok:
        extra = {"audit": report.to_dict()}
        if policy_factory is not None:
            extra["provenance"] = _provenance_for_violations(
                network, flow_set, policy_factory, report)
        case.fail("audit", f"{label}: {report.summary()}", **extra)


def _check_differential_schedules(case: FuzzCaseResult,
                                  network: PreparedNetwork,
                                  flow_set: FlowSet, rho_t: int,
                                  plain_signatures: Dict[str, Tuple],
                                  ) -> Optional[SchedulingResult]:
    """The scalar/vector and stepwise/fused equivalence matrix.

    Fills ``plain_signatures`` with each policy's provenance-free
    schedule signature (the reference the provenance-parity check
    compares against).  Returns a schedulable result (for the simulator
    checks), preferring RC, or None when nothing schedulable was
    produced.
    """
    best_schedulable: Optional[SchedulingResult] = None

    for name in ("NR", "RA"):
        with _kernel.kernel_mode(_kernel.KERNEL_SCALAR):
            scalar = _run_scheduler(network, flow_set,
                                    make_policy(name, rho_t))
        with _kernel.kernel_mode(_kernel.KERNEL_VECTOR):
            vector = _run_scheduler(network, flow_set,
                                    make_policy(name, rho_t))
        if _schedule_signature(scalar) != _schedule_signature(vector):
            case.fail("kernel_equivalence",
                      f"{name}: scalar and vector kernels produced "
                      f"different schedules")
        _audit_result(case, f"{name}/vector", network, flow_set, vector,
                      rho_floor=math.inf if name == "NR" else rho_t,
                      policy_factory=lambda name=name: make_policy(name,
                                                                   rho_t))
        plain_signatures[name] = _schedule_signature(vector)
        if name == "NR" and vector.schedule.num_reused_cells():
            case.fail("nr_no_reuse",
                      f"NR produced {vector.schedule.num_reused_cells()} "
                      f"shared cell(s)")
        if vector.schedulable:
            best_schedulable = vector

    for rho_reset in (RHO_RESET_TRANSMISSION, RHO_RESET_FLOW):
        def rc_policy() -> ConservativeReusePolicy:
            return ConservativeReusePolicy(rho_t=rho_t, rho_reset=rho_reset)

        with _kernel.kernel_mode(_kernel.KERNEL_SCALAR):
            scalar = _run_scheduler(network, flow_set, rc_policy())
        # Vector kernel + observability off takes the fused descent.
        with _kernel.kernel_mode(_kernel.KERNEL_VECTOR):
            fused = _run_scheduler(network, flow_set, rc_policy())
        # Vector kernel + a live recorder pins the stepwise loop.
        with _kernel.kernel_mode(_kernel.KERNEL_VECTOR), \
                _obs.recording(Recorder()):
            stepwise = _run_scheduler(network, flow_set, rc_policy())

        label = f"RC[{rho_reset}]"
        if _schedule_signature(scalar) != _schedule_signature(fused):
            case.fail("kernel_equivalence",
                      f"{label}: scalar stepwise and vector fused runs "
                      f"produced different schedules")
        if _schedule_signature(fused) != _schedule_signature(stepwise):
            case.fail("rc_fused_equivalence",
                      f"{label}: fused and stepwise descents produced "
                      f"different schedules")
        _audit_result(case, f"{label}/fused", network, flow_set, fused,
                      rho_floor=rho_t, policy_factory=rc_policy)
        if fused.schedulable:
            best_schedulable = fused
        if rho_reset == RHO_RESET_TRANSMISSION:
            plain_signatures["RC"] = _schedule_signature(stepwise)
    return best_schedulable


def _check_provenance_parity(case: FuzzCaseResult, network: PreparedNetwork,
                             flow_set: FlowSet, rho_t: int,
                             plain_signatures: Dict[str, Tuple]) -> None:
    """Scalar and vector kernels must narrate placement identically.

    For each policy, both kernel modes run under a live
    :class:`ProvenanceRecorder`; the recorded decision streams must be
    bit-identical, and the schedules must match both each other and the
    provenance-free run of the same policy (recording is an observer,
    not a participant).
    """
    for name in ("NR", "RA", "RC"):
        streams = {}
        signatures = {}
        for mode in (_kernel.KERNEL_SCALAR, _kernel.KERNEL_VECTOR):
            prov = ProvenanceRecorder()
            with _kernel.kernel_mode(mode), \
                    _obs.recording(Recorder(provenance=prov)):
                result = _run_scheduler(network, flow_set,
                                        make_policy(name, rho_t))
            streams[mode] = prov.records()
            signatures[mode] = _schedule_signature(result)
        if streams[_kernel.KERNEL_SCALAR] != streams[_kernel.KERNEL_VECTOR]:
            case.fail("provenance_parity",
                      f"{name}: scalar and vector kernels recorded "
                      f"different provenance streams")
        if signatures[_kernel.KERNEL_SCALAR] != \
                signatures[_kernel.KERNEL_VECTOR]:
            case.fail("provenance_schedule_identity",
                      f"{name}: schedules diverged between kernels while "
                      f"recording provenance")
        plain = plain_signatures.get(name)
        if plain is not None and signatures[_kernel.KERNEL_VECTOR] != plain:
            case.fail("provenance_schedule_identity",
                      f"{name}: recording provenance perturbed the "
                      f"schedule")


def _check_simulator(case: FuzzCaseResult, network: PreparedNetwork,
                     environment: RadioEnvironment, flow_set: FlowSet,
                     result: SchedulingResult, sim_seed: int) -> None:
    """Simulator invariants on one schedulable result."""
    schedule = result.schedule
    channel_map = network.topology.channel_map
    config = SimulationConfig(seed=sim_seed)

    def simulate(conditions: Optional[Conditions]) -> SimulationStats:
        return TschSimulator(
            schedule=schedule, flow_set=flow_set, environment=environment,
            channel_map=channel_map, config=config,
            conditions=conditions).run(_SIM_REPETITIONS)

    baseline = simulate(None)
    for flow_id, delivered in baseline.flow_delivered.items():
        released = baseline.flow_released.get(flow_id, 0)
        if delivered > released:
            case.fail("sim_conservation",
                      f"flow {flow_id}: {delivered} deliveries out of "
                      f"{released} releases")

    if _stats_signature(simulate(Conditions())) != \
            _stats_signature(baseline):
        case.fail("sim_overlay_identity",
                  "empty Conditions() overlay changed simulation results")

    # The obs counters must equal the stats totals, and recording must
    # not perturb the simulation itself.  Run the check twice: clean,
    # and with a dark sender (the path that historically diverged).
    dark_sender = schedule.entries[0].request.sender if len(schedule) else None
    overlays = [("clean", None)]
    if dark_sender is not None:
        overlays.append(
            ("dark", Conditions(dark_nodes=frozenset({dark_sender}))))
    for label, conditions in overlays:
        with _obs.recording(Recorder()) as rec:
            observed = simulate(conditions)
        if conditions is None and \
                _stats_signature(observed) != _stats_signature(baseline):
            case.fail("sim_obs_identity",
                      "recording changed simulation results")
        attempts, successes = _stats_attempt_totals(observed)
        deliveries = sum(observed.flow_delivered.values())
        for counter, expected in (("sim.attempts", attempts),
                                  ("sim.successes", successes),
                                  ("sim.deliveries", deliveries)):
            recorded = rec.registry.counter_value(counter)
            if recorded != expected:
                case.fail("sim_obs_counters",
                          f"{label}: counter {counter} is {recorded}, "
                          f"stats total is {expected}")


def _check_sim_batched(case: FuzzCaseResult, network: PreparedNetwork,
                       environment: RadioEnvironment, flow_set: FlowSet,
                       result: SchedulingResult, sim_seed: int) -> None:
    """Event-vs-slot engine parity on one schedulable result.

    The batched event engine must reproduce the slot-driven oracle's
    statistics bit for bit — clean, and under every overlay axis (dark
    senders, an interferer burst, per-pair drift plus a reuse boost) —
    and, because repetitions draw from independent ``(seed, rep)``
    substreams, its results must not depend on how the repetitions are
    chunked into draw matrices.
    """
    schedule = result.schedule
    channel_map = network.topology.channel_map
    num_nodes = network.topology.num_nodes

    def simulate(engine: str, conditions: Optional[Conditions],
                 chunk_reps: Optional[int] = None) -> SimulationStats:
        return TschSimulator(
            schedule=schedule, flow_set=flow_set, environment=environment,
            channel_map=channel_map,
            config=SimulationConfig(seed=sim_seed, engine=engine),
            conditions=conditions).run(_SIM_REPETITIONS,
                                       chunk_reps=chunk_reps)

    overlays: List[Tuple[str, Optional[Conditions]]] = [("clean", None)]
    senders = sorted({entry.request.sender for entry in schedule.entries})
    if senders:
        overlays.append(("dark_senders",
                         Conditions(dark_nodes=frozenset(senders[:2]))))
    burst = WifiInterferer(position=Position(0.0, 0.0, 0.0),
                           wifi_channel=1, duty_cycle=0.6)
    overlays.append(("interferer_burst", Conditions(
        extra_interferers=(burst,),
        extra_interferer_rssi_dbm=np.full((1, num_nodes), -55.0))))
    if len(schedule):
        request = schedule.entries[0].request
        overlays.append(("pair_drift", Conditions(
            pair_attenuation_db={
                (request.sender, request.receiver): 6.0,
                (request.receiver, request.sender): 6.0},
            interference_boost_db=3.0)))

    for label, conditions in overlays:
        slot_sig = _stats_signature(simulate("slot", conditions))
        event_sig = _stats_signature(simulate("event", conditions))
        if event_sig != slot_sig:
            case.fail("sim_batched_parity",
                      f"{label}: event engine diverged from the slot "
                      f"oracle")

    if _stats_signature(simulate("event", None, chunk_reps=1)) != \
            _stats_signature(simulate("event", None)):
        case.fail("sim_batched_chunks",
                  "event-engine results changed with chunk_reps=1")


def _audit_repaired(case: FuzzCaseResult, check: str, label: str,
                    network: PreparedNetwork, flow_set: FlowSet,
                    schedule, rho_floor: float, barred) -> None:
    """Full audit of a repaired (or fallback-rebuilt) schedule."""
    report = audit_schedule(schedule, network.reuse, rho_floor,
                            flow_set=flow_set, expect_complete=True,
                            barred_links=barred)
    if not report.ok:
        case.fail(check, f"{label}: {report.summary()}",
                  audit=report.to_dict())


def _check_repair(case: FuzzCaseResult, network: PreparedNetwork,
                  flow_set: FlowSet, rho_t: int,
                  result: SchedulingResult) -> None:
    """Repair-vs-rebuild differential on one schedulable result.

    Evicts a deterministic victim link via warm-start repair under both
    kernels (bit-identical products required), audits a successful
    repair with the victim barred, runs + audits the designed fallback
    (full barrier rebuild) when repair fails placement, checks the
    input schedule is never mutated, and repeats the audit for a
    ρ-escalation repair at the raised floor.
    """
    from repro.core.repair import (ChangeSet, repair_schedule,
                                   smallest_reused_link)
    from repro.core.reschedule import reschedule_without_reuse_on

    schedule = result.schedule
    policy_name = result.policy_name
    rho_floor = math.inf if policy_name == "NR" else rho_t
    before = _entries_signature(schedule)

    victim = smallest_reused_link(schedule)
    if victim is not None:
        change = ChangeSet(victims=(victim,))
        products = {}
        for mode in (_kernel.KERNEL_SCALAR, _kernel.KERNEL_VECTOR):
            with _kernel.kernel_mode(mode):
                products[mode] = repair_schedule(
                    schedule, flow_set, network.reuse, change,
                    rho_t=rho_t, policy_name=policy_name)
        scalar = products[_kernel.KERNEL_SCALAR]
        vector = products[_kernel.KERNEL_VECTOR]
        if (scalar.schedulable != vector.schedulable or
                _entries_signature(scalar.schedule) !=
                _entries_signature(vector.schedule)):
            case.fail("repair_kernel_equivalence",
                      f"{policy_name}: scalar and vector kernels produced "
                      f"different repaired schedules")
        if vector.schedulable:
            _audit_repaired(case, "repair_audit",
                            f"{policy_name}/victim {victim}", network,
                            flow_set, vector.schedule, rho_floor, {victim})
        else:
            # The designed fallback: repair could not re-place the blast
            # radius, so the manager rebuilds under a barrier policy.
            # Exercise it here so a placement failure never drops the
            # case out of correctness coverage.
            rebuilt = reschedule_without_reuse_on(
                flow_set, network.topology.num_nodes,
                network.num_channels, network.reuse,
                make_policy(policy_name, rho_t), {victim})
            if rebuilt.schedulable:
                _audit_repaired(case, "repair_fallback_audit",
                                f"{policy_name}/victim {victim} fallback",
                                network, flow_set, rebuilt.schedule,
                                rho_floor, {victim})

    if policy_name != "NR":
        escalated = rho_t + 1
        outcome = repair_schedule(
            schedule, flow_set, network.reuse,
            ChangeSet(rho_t=escalated), rho_t=escalated,
            policy_name=policy_name)
        if outcome.schedulable:
            _audit_repaired(case, "repair_audit",
                            f"{policy_name}/rho {rho_t}->{escalated}",
                            network, flow_set, outcome.schedule,
                            float(escalated), ())

    if _entries_signature(schedule) != before:
        case.fail("repair_purity",
                  f"{policy_name}: repair mutated the input schedule")


def run_case(index: int, seed: int) -> FuzzCaseResult:
    """Execute one fuzz case (deterministic in ``(seed, index)``)."""
    case = FuzzCaseResult(index=index, seed=seed)
    rng = np.random.default_rng([seed, index])
    network = environment = flow_set = None
    for _ in range(_MAX_REDRAWS):
        params = _draw_params(rng)
        try:
            network, environment, flow_set = _build_case(params)
            break
        except (NoRouteError, ValueError):
            continue
    if network is None:
        case.skipped = True
        return case
    case.params = params

    plain_signatures: Dict[str, Tuple] = {}
    schedulable = _check_differential_schedules(
        case, network, flow_set, params["rho_t"], plain_signatures)
    _check_provenance_parity(case, network, flow_set, params["rho_t"],
                             plain_signatures)
    if schedulable is not None:
        _check_repair(case, network, flow_set, params["rho_t"], schedulable)
        _check_simulator(case, network, environment, flow_set, schedulable,
                         params["sim_seed"])
        _check_sim_batched(case, network, environment, flow_set,
                           schedulable, params["sim_seed"])
    return case


def run_fuzz(cases: int, seed: int = 0,
             on_case: Optional[Callable[[FuzzCaseResult], None]] = None
             ) -> FuzzReport:
    """Run the differential fuzzer.

    Args:
        cases: Number of cases to execute.
        seed: Run seed; case ``i`` draws from ``default_rng([seed, i])``.
        on_case: Optional per-case callback (progress reporting).

    Returns:
        A :class:`FuzzReport`; ``report.ok`` is the verdict.
    """
    if cases <= 0:
        raise ValueError("cases must be positive")
    report = FuzzReport(seed=seed, num_cases=cases)
    for index in range(cases):
        case = run_case(index, seed)
        report.cases.append(case)
        if on_case is not None:
            on_case(case)
    return report
