"""Routing: shortest paths and traffic patterns."""

from repro.routing.shortest_path import (
    NoRouteError,
    path_length,
    shortest_path,
    shortest_path_tree,
)
from repro.routing.traffic import (
    TrafficType,
    assign_routes,
    route_centralized,
    route_peer_to_peer,
)

__all__ = [
    "NoRouteError",
    "TrafficType",
    "assign_routes",
    "path_length",
    "route_centralized",
    "route_peer_to_peer",
    "shortest_path",
    "shortest_path_tree",
]
