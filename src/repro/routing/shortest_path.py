"""Shortest-path routing on the communication graph.

The WirelessHART network manager generates a single route per flow using a
shortest-path algorithm (paper Section VII).  We use BFS with
deterministic tie-breaking (smallest predecessor id) so that a given
(topology, flow set) pair always yields the same routes.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence


from repro.network.graphs import CommunicationGraph


class NoRouteError(Exception):
    """Raised when no route exists between two nodes."""

    def __init__(self, source: int, destination: int):
        super().__init__(f"no route from {source} to {destination}")
        self.source = source
        self.destination = destination


def shortest_path(graph: CommunicationGraph, source: int,
                  destination: int) -> List[int]:
    """Shortest path (in hops) from source to destination.

    Ties between equal-length paths are broken toward the smallest
    predecessor node id, making routes deterministic.

    Returns:
        The node sequence including both endpoints.

    Raises:
        NoRouteError: If destination is unreachable from source.
    """
    if source == destination:
        return [source]
    n = graph.num_nodes
    if not (0 <= source < n and 0 <= destination < n):
        raise ValueError("source/destination out of range")

    parent: Dict[int, int] = {source: source}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        if u == destination:
            break
        for v in graph.neighbors(u):  # neighbors() is ascending by id
            if v not in parent:
                parent[v] = u
                queue.append(v)
    if destination not in parent:
        raise NoRouteError(source, destination)

    path = [destination]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def shortest_path_tree(graph: CommunicationGraph,
                       root: int) -> Dict[int, List[int]]:
    """Shortest paths from ``root`` to every reachable node.

    Returns:
        A dict mapping each reachable node to its path from the root.
        Useful for batch routing toward an access point.
    """
    parent: Dict[int, int] = {root: root}
    queue = deque([root])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v not in parent:
                parent[v] = u
                queue.append(v)

    paths: Dict[int, List[int]] = {}
    for node in parent:
        path = [node]
        while path[-1] != root:
            path.append(parent[path[-1]])
        path.reverse()
        paths[node] = path
    return paths


def path_length(path: Sequence[int]) -> int:
    """Number of links on a path (node sequence)."""
    return max(0, len(path) - 1)
