"""Traffic patterns: centralized (via access points) vs peer-to-peer.

The paper evaluates two traffic types (Section VII):

* **Centralized** — the sensor's packet travels source → access point,
  crosses the wire to the controller behind the gateway, and the control
  command travels access point → actuator.  Both segments consume
  wireless slots; the wired hop does not.  Each segment uses the access
  point that minimizes the total wireless path length.

* **Peer-to-peer** — controllers run on field devices, so the packet goes
  directly source → destination.  Paths are roughly half as long, which
  is why channel reuse pays off even more under this pattern.
"""

from __future__ import annotations

import enum
from typing import List, Sequence

from repro.flows.flow import Flow, FlowSet
from repro.network.graphs import CommunicationGraph
from repro.routing.shortest_path import (
    NoRouteError,
    shortest_path,
    shortest_path_tree,
)


class TrafficType(enum.Enum):
    """How packets are routed between sensors and actuators."""

    CENTRALIZED = "centralized"
    PEER_TO_PEER = "peer_to_peer"


def route_peer_to_peer(graph: CommunicationGraph, flow: Flow) -> Flow:
    """Assign a direct shortest-path route to a flow."""
    path = shortest_path(graph, flow.source, flow.destination)
    return flow.with_route(path)


def route_centralized(graph: CommunicationGraph, flow: Flow,
                      access_points: Sequence[int]) -> Flow:
    """Assign a centralized route: source → AP —wire→ AP → destination.

    Each segment independently picks the access point giving the shortest
    wireless path (uplink AP and downlink AP may differ).  The stored
    route is the concatenated node sequence; the AP-to-AP wired hand-off
    consumes no time slots and is excluded from
    :attr:`repro.flows.flow.Flow.links`.

    Raises:
        NoRouteError: If either segment cannot reach any access point.
    """
    if not access_points:
        raise ValueError("centralized routing requires access points")

    uplink = _best_segment(graph, flow.source, access_points, toward_ap=True)
    downlink = _best_segment(graph, flow.destination, access_points,
                             toward_ap=False)
    route = uplink + downlink
    # The uplink-AP → downlink-AP hop rides the wire behind the gateway.
    # With the same AP on both segments it appears as a repeated node
    # (collapsed by Flow.links); with different APs it must be flagged so
    # no wireless transmission is scheduled for it.
    wire_after = None
    if uplink[-1] != downlink[0]:
        wire_after = len(uplink) - 1
    return flow.with_route(route, wire_after=wire_after)


def _best_segment(graph: CommunicationGraph, endpoint: int,
                  access_points: Sequence[int],
                  toward_ap: bool) -> List[int]:
    """Shortest path between a node and its best access point.

    Returns the path ordered source→AP when ``toward_ap`` else AP→node.
    """
    best_path = None
    for ap in sorted(access_points):
        try:
            path = shortest_path(graph, endpoint, ap)
        except NoRouteError:
            continue
        if best_path is None or len(path) < len(best_path):
            best_path = path
    if best_path is None:
        raise NoRouteError(endpoint, access_points[0])
    return best_path if toward_ap else list(reversed(best_path))


def assign_routes(flow_set: FlowSet, graph: CommunicationGraph,
                  traffic: TrafficType,
                  access_points: Sequence[int] = ()) -> FlowSet:
    """Assign routes to every flow in a set.

    Args:
        flow_set: Flows without routes.
        graph: The communication graph.
        traffic: Centralized or peer-to-peer routing.
        access_points: Required for centralized traffic.

    Returns:
        A new FlowSet with the same priority order and routed flows.

    Raises:
        NoRouteError: If any flow cannot be routed.
    """
    routed = []
    for flow in flow_set:
        if traffic is TrafficType.PEER_TO_PEER:
            routed.append(route_peer_to_peer(graph, flow))
        else:
            routed.append(route_centralized(graph, flow, access_points))
    return FlowSet(routed)
