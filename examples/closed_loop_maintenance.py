#!/usr/bin/env python3
"""The full maintenance loop the paper's Section VI enables.

1. Schedule a heavy workload aggressively (RA) — many shared cells.
2. Execute the schedule in the simulator and build health-report epochs.
3. Run the K-S detection policy to find links whose reliability is
   degraded *by channel reuse* (not by other causes).
4. Reschedule with those victim links barred from sharing a channel.
5. Re-simulate and verify the victims' PRRs recovered.

Run:  python examples/closed_loop_maintenance.py
"""

import numpy as np

from repro import PeriodRange, TrafficType, make_wustl
from repro.core import AggressiveReusePolicy, reschedule_without_reuse_on
from repro.detection import (
    DetectionConfig,
    Verdict,
    build_epoch_reports,
    diagnose_epoch,
)
from repro.experiments import (
    build_workload,
    prepare_network,
    schedule_workload,
)
from repro.simulator import SimulationConfig, TschSimulator

EPOCHS = 3
REPS_PER_EPOCH = 18


def simulate(schedule, flows, environment, network, seed):
    simulator = TschSimulator(
        schedule, flows, environment, network.topology.channel_map,
        config=SimulationConfig(seed=seed))
    return simulator.run(EPOCHS * REPS_PER_EPOCH)


def detect_victims(stats, config=DetectionConfig()):
    victims = set()
    for report in build_epoch_reports(stats, REPS_PER_EPOCH):
        for diagnosis in diagnose_epoch(report, config):
            if diagnosis.verdict is Verdict.REJECT:
                victims.add(diagnosis.link)
    return sorted(victims)


def main():
    print("Synthesizing the WUSTL-like testbed ...")
    topology, environment = make_wustl()
    network = prepare_network(topology, channels=(11, 12, 13, 14))

    rng = np.random.default_rng(7)
    flows = build_workload(network, 70, PeriodRange(-1, 1),
                           TrafficType.PEER_TO_PEER, rng)
    print(f"Workload: {len(flows)} flows, hyperperiod "
          f"{flows.hyperperiod()} slots")

    print("\nStep 1-2: schedule with RA and execute "
          f"{EPOCHS * REPS_PER_EPOCH} times ...")
    original = schedule_workload(network, flows, "RA")
    if not original.schedulable:
        raise SystemExit("workload unschedulable — try another seed")
    print(f"  {original.schedule.num_reused_cells()} shared cells, "
          f"{len(original.schedule.reuse_links())} links involved in reuse")
    stats = simulate(original.schedule, flows, environment, network, seed=7)
    print(f"  worst per-flow PDR: {stats.worst_pdr():.3f}")

    print("\nStep 3: detect reuse-degraded links (K-S test, alpha=0.05) ...")
    victims = detect_victims(stats)
    if not victims:
        print("  no reuse-degraded links this run — nothing to fix")
        return
    for link in victims:
        before_reuse = stats.overall_link_prr(link, shared_cell=True)
        before_cf = stats.overall_link_prr(link, shared_cell=False)
        cf_text = "-" if before_cf is None else f"{before_cf:.2f}"
        print(f"  victim {link}: PRR {before_reuse:.2f} in shared cells "
              f"vs {cf_text} contention-free")

    print("\nStep 4-5: iterate reschedule -> re-simulate -> re-detect.")
    print("(Moving victims can create new reuse pairings elsewhere, so")
    print("the loop accumulates victims until detection comes back clean.)")
    all_victims = set(victims)
    best_worst = stats.worst_pdr()
    for round_number in range(1, 5):
        # Repair keeps the original (RA) policy for everything else:
        # at this utilization an RC rebuild would not leave enough free
        # cells for the barred links, so only the victims change.
        repaired = reschedule_without_reuse_on(
            flows, network.topology.num_nodes, 4, network.reuse,
            AggressiveReusePolicy(rho_t=2), sorted(all_victims))
        if not repaired.schedulable:
            raise SystemExit("  rescheduling failed — more channels needed")
        stats_after = simulate(repaired.schedule, flows, environment,
                               network, seed=7)
        new_victims = set(detect_victims(stats_after)) - all_victims
        print(f"  round {round_number}: "
              f"{repaired.schedule.num_reused_cells()} shared cells, "
              f"worst PDR {stats_after.worst_pdr():.3f}, "
              f"new victims {sorted(new_victims)}")
        best_worst = stats_after.worst_pdr()
        if not new_victims:
            break
        all_victims |= new_victims

    print("\nVerifying the original victims recovered:")
    for link in victims:
        after = stats_after.overall_link_prr(link, shared_cell=False)
        print(f"  victim {link}: contention-free PRR now "
              f"{after if after is None else round(after, 2)}")
    print(f"\nworst per-flow PDR: {stats.worst_pdr():.3f} (before) -> "
          f"{best_worst:.3f} (after {round_number} repair rounds)")


if __name__ == "__main__":
    main()
