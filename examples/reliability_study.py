#!/usr/bin/env python3
"""Reliability study: what channel reuse costs over the air.

Schedules the paper's reliability workload (50 peer-to-peer flows, half
at 0.5 s and half at 1 s, channels 11-14) on the WUSTL-like testbed with
NR, RA, and RC, then *executes* each schedule in the SINR-based slot
simulator and compares per-flow Packet Delivery Ratios.

Expected outcome (paper Figure 8): all three deliver similar median PDR,
but RA's worst-case flow collapses while RC stays within a few percent
of the no-reuse baseline.

Run:  python examples/reliability_study.py
"""

from collections import defaultdict

from repro import make_wustl
from repro.experiments import run_reliability


def main():
    print("Synthesizing the 60-node WUSTL-like testbed ...")
    topology, environment = make_wustl()

    print("Scheduling and simulating 3 flow sets x 3 policies "
          "(60 schedule executions each) ...\n")
    outcomes = run_reliability(topology, environment, num_flow_sets=3,
                               repetitions=60, seed=0)

    by_set = defaultdict(dict)
    for outcome in outcomes:
        by_set[outcome.set_index][outcome.policy] = outcome

    print(f"{'flow set':>9} {'policy':>7} {'median PDR':>11} "
          f"{'worst PDR':>10} {'shared cells':>13}")
    for set_index in sorted(by_set):
        for policy in ("NR", "RA", "RC"):
            outcome = by_set[set_index][policy]
            if not outcome.schedulable:
                print(f"{set_index:>9} {policy:>7} {'unschedulable':>22}")
                continue
            shared = sum(v for k, v in outcome.tx_hist.items() if k > 1)
            print(f"{set_index:>9} {policy:>7} {outcome.median_pdr:>11.3f} "
                  f"{outcome.worst_pdr:>10.3f} {shared:>13}")

    print("\nReading: RC buys NR-level reliability while keeping the "
          "schedulability benefits of reuse; RA pays for its aggressive "
          "packing with a collapsed worst-case flow.")


if __name__ == "__main__":
    main()
