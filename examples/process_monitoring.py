#!/usr/bin/env python3
"""Process-monitoring scenario: centralized control traffic.

Models the classic process-industry deployment the paper's introduction
motivates: sensors report to a controller behind the gateway, which
sends commands back to actuators.  Every packet crosses an access point,
so the wireless medium around the APs becomes the bottleneck — exactly
where channel reuse pays off when channels are scarce.

The script sweeps the number of available channels and reports the
schedulable ratio of each policy, reproducing the shape of the paper's
Figure 1 in miniature.

Run:  python examples/process_monitoring.py
"""

from repro import TrafficType, make_indriya
from repro.experiments import run_sweep
from repro.flows import PeriodRange


def main():
    print("Synthesizing the Indriya-like testbed ...")
    topology, _ = make_indriya()

    print("Scheduling 30-flow centralized workloads "
          "(P = [0.5 s, 8 s], 8 random flow sets per point) ...\n")
    result = run_sweep(
        topology, TrafficType.CENTRALIZED, vary="channels",
        values=[3, 4, 5, 8], fixed_flows=30,
        period_range=PeriodRange(-1, 3), num_flow_sets=8, seed=11)

    ratios = result.schedulable_ratios()
    print("Schedulable ratio vs number of channels "
          "(centralized traffic):")
    print("  channels:", "  ".join(f"{x:>5}" for x in result.values))
    for policy in ("NR", "RA", "RC"):
        row = "  ".join(f"{ratios[policy][x]:5.2f}" for x in result.values)
        print(f"  {policy:>8}: {row}")

    print("\nHow much channel sharing did that cost?")
    for policy in ("RA", "RC"):
        fractions = result.tx_per_cell_fractions(policy)
        exclusive = fractions.get(1, 0.0)
        print(f"  {policy}: {exclusive:.0%} of occupied cells kept a "
              f"channel exclusive "
              f"(max {max(fractions)} concurrent transmissions)")

    print("\nReading: RA and RC rescue workloads NR cannot schedule at "
          "3-4 channels, but RC does it while leaving most cells "
          "exclusive — the conservative trade the paper argues for.")


if __name__ == "__main__":
    main()
