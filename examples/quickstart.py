#!/usr/bin/env python3
"""Quickstart: schedule a real-time workload with conservative channel reuse.

Builds the Indriya-like testbed, restricts it to 5 channels, generates a
random peer-to-peer workload, and schedules it with the three policies
from the paper — NR (WirelessHART standard, no reuse), RA (aggressive
reuse), and RC (the paper's conservative reuse) — printing what each one
did with the channels.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    PeriodRange,
    TrafficType,
    build_workload,
    make_indriya,
    prepare_network,
    schedule_workload,
)
from repro.analysis import tx_per_cell_distribution


def main():
    print("Synthesizing the 80-node Indriya-like testbed ...")
    topology, environment = make_indriya()

    # Use 5 of the 16 channels; derive the communication and channel
    # reuse graphs exactly as the WirelessHART network manager would.
    network = prepare_network(topology, num_channels=5)
    print(f"  communication graph: {network.communication.num_edges()} edges")
    print(f"  channel reuse graph: {network.reuse.num_edges()} edges, "
          f"diameter {network.reuse.diameter()}")

    # A random workload: 40 flows, harmonic periods in [1 s, 4 s],
    # Deadline Monotonic priorities, peer-to-peer shortest-path routes.
    rng = np.random.default_rng(1)
    flows = build_workload(network, num_flows=40,
                           period_range=PeriodRange(0, 2),
                           traffic=TrafficType.PEER_TO_PEER, rng=rng)
    print(f"\nWorkload: {len(flows)} flows, hyperperiod "
          f"{flows.hyperperiod()} slots "
          f"({flows.hyperperiod() / 100:.0f} s), utilization "
          f"{flows.utilization():.2f} channels")

    for policy in ("NR", "RA", "RC"):
        result = schedule_workload(network, flows, policy)
        if not result.schedulable:
            print(f"\n{policy}: UNSCHEDULABLE "
                  f"(flow {result.failed_flow} missed its deadline)")
            continue
        schedule = result.schedule
        histogram = tx_per_cell_distribution(schedule)
        shared = sum(count for k, count in histogram.items() if k > 1)
        print(f"\n{policy}: schedulable "
              f"({result.elapsed_s * 1000:.1f} ms)")
        print(f"  {len(schedule)} transmissions in "
              f"{sum(histogram.values())} cells; "
              f"{shared} cells share a channel")
        print(f"  transmissions-per-channel histogram: {histogram}")


if __name__ == "__main__":
    main()
