#!/usr/bin/env python3
"""Detecting why a link went bad: channel reuse vs external interference.

Runs the paper's Section VI detection policy end to end:

1. Schedule 80 peer-to-peer flows on channels 11-14 with RA and RC.
2. Execute each schedule for several 18-repetition health-report epochs,
   first in clean air and then with WiFi interferers (one per floor on
   WiFi channel 1, which overlaps 802.15.4 channels 11-14).
3. For every reuse-involved link whose reuse-slot PRR drops below 0.9,
   run the two-sample K-S test against its contention-free PRR
   distribution: *reject* means channel reuse is the culprit (reschedule
   the link), *accept* means the cause is elsewhere (rescheduling would
   not help).

Run:  python examples/interference_detection.py
"""

from repro import make_wustl
from repro.detection import Verdict
from repro.experiments import run_detection
from repro.testbeds import WUSTL_PLAN


def main():
    print("Synthesizing the WUSTL-like testbed ...")
    topology, environment = make_wustl()

    print("Running RA and RC under clean air and WiFi interference "
          "(3 epochs x 18 repetitions each) ...\n")
    outcomes = run_detection(topology, environment, WUSTL_PLAN,
                             num_epochs=3, seed=0)

    for outcome in outcomes:
        print(f"--- {outcome.policy} / {outcome.condition} ---")
        if not outcome.schedulable:
            print("  unschedulable")
            continue
        print(f"  links involved in channel reuse: "
              f"{len(outcome.reuse_links)}")
        rejected = outcome.rejected_links()
        accepted = outcome.accepted_links()
        print(f"  below PRR_t in some epoch: {len(outcome.low_prr_links)}"
              f"  ->  reuse-degraded (reject): {len(rejected)}, "
              f"other causes (accept): {len(accepted)}")
        for epoch, diagnoses in sorted(outcome.diagnoses.items()):
            for diagnosis in diagnoses:
                if diagnosis.verdict is Verdict.OK:
                    continue
                cf = diagnosis.contention_free_prr
                cf_text = "-" if cf is None else f"{cf:.2f}"
                print(f"    epoch {epoch} link {diagnosis.link}: "
                      f"reuse PRR {diagnosis.reuse_prr:.2f}, "
                      f"contention-free {cf_text} -> "
                      f"{diagnosis.verdict.value}"
                      + (f" (p = {diagnosis.ks.p_value:.3f})"
                         if diagnosis.ks else ""))
        print()

    print("Reading: rejected links are healthy without reuse and sick "
          "with it (reschedule them); accepted links are sick either "
          "way — the WiFi interferers, not channel reuse, are to blame.")


if __name__ == "__main__":
    main()
