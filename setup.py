"""Legacy setup shim.

Allows editable installs in offline environments where the PEP 517
editable-wheel path is unavailable (no ``wheel`` package):

    pip install -e . --no-build-isolation --no-use-pep517

All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
