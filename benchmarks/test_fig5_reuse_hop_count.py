"""Figure 5: channel-reuse hop-count distribution, RA vs RC (Indriya).

(a) peer-to-peer, (b) centralized.  Expected shape: RA is dominated by
2-hop reuse (the minimum it checks); RC shifts probability mass toward
larger hop counts, especially under peer-to-peer traffic.
"""

import pytest

from repro.flows.generator import PeriodRange
from repro.experiments.schedulability import run_sweep
from repro.routing.traffic import TrafficType

from conftest import print_histogram


def _mean_hops(histogram):
    total = sum(histogram.values())
    return sum(k * v for k, v in histogram.items()) / total


@pytest.mark.benchmark(group="fig5")
def test_fig5a_peer_to_peer(benchmark, indriya, scale):
    topology, _ = indriya
    result = benchmark.pedantic(
        run_sweep,
        args=(topology, TrafficType.PEER_TO_PEER, "channels", [3, 5, 8]),
        kwargs=dict(fixed_flows=50, period_range=PeriodRange(-1, 3),
                    num_flow_sets=scale["flow_sets"], seed=50,
                    policies=("RA", "RC")),
        rounds=1, iterations=1)
    histograms = {policy: result.reuse_hop_fractions(policy)
                  for policy in ("RA", "RC")}
    print_histogram("Fig 5(a): reuse hop count, p2p", histograms)
    # RC reuses at larger hop distances than RA.
    assert _mean_hops(histograms["RC"]) > _mean_hops(histograms["RA"])
    assert (histograms["RC"].get(3, 0) + histograms["RC"].get(4, 0)
            > histograms["RA"].get(3, 0) + histograms["RA"].get(4, 0))


@pytest.mark.benchmark(group="fig5")
def test_fig5b_centralized(benchmark, indriya, scale):
    topology, _ = indriya
    result = benchmark.pedantic(
        run_sweep,
        args=(topology, TrafficType.CENTRALIZED, "channels", [3, 5, 8]),
        kwargs=dict(fixed_flows=30, period_range=PeriodRange(-1, 3),
                    num_flow_sets=scale["flow_sets"], seed=51,
                    policies=("RA", "RC")),
        rounds=1, iterations=1)
    histograms = {policy: result.reuse_hop_fractions(policy)
                  for policy in ("RA", "RC")}
    print_histogram("Fig 5(b): reuse hop count, centralized", histograms)
    # Centralized traffic concentrates conflicts at the APs; both
    # policies end up dominated by 2-hop reuse (paper's observation),
    # but RC never does worse than RA.
    if histograms["RA"] and histograms["RC"]:
        assert _mean_hops(histograms["RC"]) >= _mean_hops(histograms["RA"]) - 0.05
