"""Figure 9: transmissions per channel under RA and RC, per flow set.

Companion to Figure 8: RC's much lower channel sharing is why its PDR
stays close to NR's while RA's worst case collapses.
"""

import pytest

from repro.experiments.reliability import run_reliability

from conftest import print_histogram


@pytest.mark.benchmark(group="fig9")
def test_fig9_tx_per_channel(benchmark, wustl, scale):
    topology, environment = wustl
    outcomes = benchmark.pedantic(
        run_reliability,
        args=(topology, environment),
        kwargs=dict(num_flow_sets=5, repetitions=1, seed=0,
                    policies=("RA", "RC")),
        rounds=1, iterations=1)

    print("\n=== Fig 9: Tx/channel per flow set ===")
    pooled = {"RA": {}, "RC": {}}
    for outcome in outcomes:
        assert outcome.schedulable
        total = sum(outcome.tx_hist.values())
        fractions = {k: v / total for k, v in sorted(outcome.tx_hist.items())}
        print(f"set {outcome.set_index} {outcome.policy}: "
              + "  ".join(f"{k}Tx: {v:.3f}" for k, v in fractions.items()))
        for bucket, count in outcome.tx_hist.items():
            pooled[outcome.policy][bucket] = (
                pooled[outcome.policy].get(bucket, 0) + count)
    for policy, histogram in pooled.items():
        total = sum(histogram.values())
        pooled[policy] = {k: v / total for k, v in sorted(histogram.items())}
    print_histogram("Fig 9 pooled", pooled)

    # RC schedules a much larger fraction of exclusive cells than RA and
    # never packs channels as densely.
    assert pooled["RC"][1] > pooled["RA"][1]
    assert max(pooled["RC"]) <= max(pooled["RA"])
