"""Figure 1: schedulable ratio, centralized traffic, Indriya.

(a) ratio vs #channels, P = [2^0, 2^4];
(b) ratio vs #channels, P = [2^-1, 2^3] (heavier);
(c) ratio vs #flows at 5 channels.

Expected shape: RA ≈ RC ≥ NR, with the largest gap at few channels (3-5)
and high flow counts.
"""

import pytest

from repro.flows.generator import PeriodRange
from repro.experiments.schedulability import run_sweep
from repro.routing.traffic import TrafficType

from conftest import print_series

CHANNELS = [3, 4, 5, 8, 12, 16]
FLOWS = [10, 20, 30, 40]


def _ratios(result):
    return result.schedulable_ratios()


@pytest.mark.benchmark(group="fig1")
def test_fig1a_vs_channels_long_periods(benchmark, indriya, scale):
    topology, _ = indriya
    result = benchmark.pedantic(
        run_sweep,
        args=(topology, TrafficType.CENTRALIZED, "channels", CHANNELS),
        kwargs=dict(fixed_flows=40, period_range=PeriodRange(0, 4),
                    num_flow_sets=scale["flow_sets"], seed=10),
        rounds=1, iterations=1)
    ratios = _ratios(result)
    print_series("Fig 1(a): centralized, P=[2^0,2^4], 40 flows", ratios)
    for x in CHANNELS:
        assert ratios["RA"][x] >= ratios["NR"][x]
        assert ratios["RC"][x] >= ratios["NR"][x]


@pytest.mark.benchmark(group="fig1")
def test_fig1b_vs_channels_short_periods(benchmark, indriya, scale):
    topology, _ = indriya
    result = benchmark.pedantic(
        run_sweep,
        args=(topology, TrafficType.CENTRALIZED, "channels", CHANNELS),
        kwargs=dict(fixed_flows=30, period_range=PeriodRange(-1, 3),
                    num_flow_sets=scale["flow_sets"], seed=11),
        rounds=1, iterations=1)
    ratios = _ratios(result)
    print_series("Fig 1(b): centralized, P=[2^-1,2^3], 30 flows", ratios)
    # Heavier workload: reuse beats NR clearly at few channels.
    few = CHANNELS[0]
    assert ratios["RC"][few] >= ratios["NR"][few]


@pytest.mark.benchmark(group="fig1")
def test_fig1c_vs_flows(benchmark, indriya, scale):
    topology, _ = indriya
    result = benchmark.pedantic(
        run_sweep,
        args=(topology, TrafficType.CENTRALIZED, "flows", FLOWS),
        kwargs=dict(fixed_channels=4, period_range=PeriodRange(-1, 3),
                    num_flow_sets=scale["flow_sets"], seed=12),
        rounds=1, iterations=1)
    ratios = _ratios(result)
    print_series("Fig 1(c): centralized, 4 channels, vs #flows", ratios)
    heavy = FLOWS[-1]
    assert ratios["RA"][heavy] >= ratios["NR"][heavy]
    assert ratios["RC"][heavy] >= ratios["NR"][heavy]
