"""Figure 7: the WUSTL testbed topology on channels 11-14.

The paper shows the physical layout and connectivity.  We print the
equivalent statistics of the synthetic stand-in: node count, floors,
edges, degree distribution, and hop diameter at PRR_t = 0.9.
"""

import numpy as np
import pytest

from repro.experiments.common import prepare_network
from repro.network.graphs import all_pairs_hops

from conftest import print_series


@pytest.mark.benchmark(group="fig7")
def test_fig7_wustl_topology(benchmark, wustl):
    topology, environment = wustl

    def build():
        return prepare_network(topology, channels=(11, 12, 13, 14))

    network = benchmark.pedantic(build, rounds=1, iterations=1)
    graph = network.communication
    hops = all_pairs_hops(graph.adjacency)
    finite = hops[hops >= 0]
    degrees = [graph.degree(i) for i in range(graph.num_nodes)]
    floors = sorted({round(p.z) for p in
                     (topology.node(i).position
                      for i in range(topology.num_nodes))})
    print("\n=== Fig 7: WUSTL topology (channels 11-14) ===")
    print(f"nodes: {topology.num_nodes}   floors (z): {floors}")
    print(f"communication edges: {graph.num_edges()}   "
          f"connected: {graph.is_connected()}")
    print(f"degree: mean {np.mean(degrees):.1f}  min {min(degrees)}  "
          f"max {max(degrees)}")
    print(f"hop diameter: {finite.max()}   mean path: "
          f"{finite[finite > 0].mean():.2f}")
    print(f"reuse graph: edges {network.reuse.num_edges()}   "
          f"diameter {network.reuse.diameter()}")
    print(f"access points (highest degree): {network.access_points}")

    assert topology.num_nodes == 60
    assert graph.is_connected()
    assert finite.max() >= 3  # genuinely multi-hop
    assert network.reuse.num_edges() > graph.num_edges()
