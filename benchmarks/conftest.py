"""Shared fixtures and scaling for the per-figure benchmarks.

Each benchmark regenerates one figure of the paper's evaluation and
prints the corresponding rows/series.  By default the workload counts are
scaled down so the whole suite completes in minutes; set
``REPRO_BENCH_FULL=1`` to run at the paper's scale (100 flow sets per
point, 100 schedule repetitions).
"""

from __future__ import annotations

import os

import pytest


def _full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def scale():
    """Benchmark scale knobs: (flow sets per point, simulator repetitions)."""
    if _full_scale():
        return {"flow_sets": 100, "repetitions": 100, "epochs": 6}
    return {"flow_sets": 8, "repetitions": 50, "epochs": 3}


@pytest.fixture(scope="session")
def indriya():
    from repro.testbeds import make_indriya

    return make_indriya()


@pytest.fixture(scope="session")
def wustl():
    from repro.testbeds import make_wustl

    return make_wustl()


def print_series(title, series):
    """Print one figure's series: {label: {x: value}}."""
    print(f"\n=== {title} ===")
    xs = sorted({x for values in series.values() for x in values})
    header = "x".ljust(8) + "".join(str(x).rjust(10) for x in xs)
    print(header)
    for label, values in series.items():
        row = label.ljust(8)
        for x in xs:
            value = values.get(x)
            row += ("-".rjust(10) if value is None
                    else f"{value:10.3f}")
        print(row)


def print_histogram(title, histograms):
    """Print distribution rows: {label: {bucket: fraction}}."""
    print(f"\n=== {title} ===")
    buckets = sorted({b for h in histograms.values() for b in h})
    header = "policy".ljust(8) + "".join(str(b).rjust(9) for b in buckets)
    print(header)
    for label, histogram in histograms.items():
        row = label.ljust(8)
        for bucket in buckets:
            row += f"{histogram.get(bucket, 0.0):9.3f}"
        print(row)
