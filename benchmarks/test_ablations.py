"""Ablation studies for the design choices DESIGN.md calls out.

Not figures from the paper — these probe the knobs the paper fixes:

* **ρ_t sensitivity** — the paper notes a larger floor is safer but less
  capable; we sweep ρ_t ∈ {2, 3, 4} and measure schedulability and PDR.
* **ρ reset scope** — Algorithm 1's pseudocode resets ρ per *flow*, its
  prose per *transmission* (our default); we compare both readings.
* **Offset rule** — RC's least-loaded channel choice vs. naive
  first-feasible.
* **Retransmission slots** — source routing's dedicated retransmission
  slot doubles the slot demand; how much schedulability does it cost and
  how much PDR does it buy?
"""

import pytest

from repro.core.rc import (
    ConservativeReusePolicy,
    RHO_RESET_FLOW,
    RHO_RESET_TRANSMISSION,
)
from repro.core.scheduler import FixedPriorityScheduler, OFFSET_FIRST
from repro.experiments.common import prepare_network
from repro.experiments.reliability import (
    build_reliability_flow_set,
    run_reliability,
)
from repro.analysis.metrics import tx_per_cell_distribution
from repro.simulator.engine import SimulationConfig, TschSimulator

import numpy as np


@pytest.mark.benchmark(group="ablation")
def test_ablation_rho_t_sensitivity(benchmark, wustl, scale):
    """Larger ρ_t floors: safer reuse, less capacity."""
    topology, environment = wustl
    network = prepare_network(topology, channels=(11, 12, 13, 14))

    def run():
        rows = {}
        for rho_t in (2, 3, 4):
            schedulable = 0
            worst_pdrs = []
            reused = 0
            for set_index in range(3):
                rng = np.random.default_rng(set_index)
                flow_set = build_reliability_flow_set(network, rng)
                policy = ConservativeReusePolicy(rho_t=rho_t)
                result = FixedPriorityScheduler(
                    topology.num_nodes, 4, network.reuse, policy
                ).run(flow_set)
                if not result.schedulable:
                    continue
                schedulable += 1
                reused += result.schedule.num_reused_cells()
                simulator = TschSimulator(
                    result.schedule, flow_set, environment,
                    network.topology.channel_map,
                    config=SimulationConfig(seed=set_index))
                stats = simulator.run(scale["repetitions"] // 2)
                worst_pdrs.append(stats.worst_pdr())
            rows[rho_t] = (schedulable, reused,
                           min(worst_pdrs) if worst_pdrs else None)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: RC rho_t floor ===")
    print("rho_t  schedulable/3  reused-cells  worst PDR")
    for rho_t, (count, reused, worst) in sorted(rows.items()):
        worst_text = "-" if worst is None else f"{worst:.3f}"
        print(f"{rho_t:>5}  {count:>13}  {reused:>12}  {worst_text:>9}")
    # Larger floors never reuse more.
    assert rows[4][1] <= rows[2][1]


@pytest.mark.benchmark(group="ablation")
def test_ablation_rho_reset_scope(benchmark, wustl):
    """Per-transmission reset (prose) vs per-flow reset (pseudocode)."""
    topology, environment = wustl
    network = prepare_network(topology, channels=(11, 12, 13, 14))

    def run():
        results = {}
        for mode in (RHO_RESET_TRANSMISSION, RHO_RESET_FLOW):
            reused = 0
            schedulable = 0
            for set_index in range(3):
                rng = np.random.default_rng(set_index)
                flow_set = build_reliability_flow_set(network, rng)
                policy = ConservativeReusePolicy(rho_t=2, rho_reset=mode)
                result = FixedPriorityScheduler(
                    topology.num_nodes, 4, network.reuse, policy
                ).run(flow_set)
                if result.schedulable:
                    schedulable += 1
                    reused += result.schedule.num_reused_cells()
            results[mode] = (schedulable, reused)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: rho reset scope ===")
    for mode, (schedulable, reused) in results.items():
        print(f"{mode:>13}: schedulable {schedulable}/3, "
              f"reused cells {reused}")
    # The per-transmission reading is at least as conservative.
    assert (results[RHO_RESET_TRANSMISSION][1]
            <= results[RHO_RESET_FLOW][1] + 5)


@pytest.mark.benchmark(group="ablation")
def test_ablation_offset_rule(benchmark, wustl):
    """Least-loaded channel choice vs first-feasible: contention spread."""
    topology, environment = wustl
    network = prepare_network(topology, channels=(11, 12, 13, 14))

    def run():
        histograms = {}
        for rule in ("least_loaded", "first"):
            pooled = {}
            for set_index in range(3):
                rng = np.random.default_rng(set_index)
                flow_set = build_reliability_flow_set(network, rng)
                policy = ConservativeReusePolicy(rho_t=2, offset_rule=rule)
                result = FixedPriorityScheduler(
                    topology.num_nodes, 4, network.reuse, policy
                ).run(flow_set)
                if not result.schedulable:
                    continue
                for k, v in tx_per_cell_distribution(
                        result.schedule).items():
                    pooled[k] = pooled.get(k, 0) + v
            histograms[rule] = pooled
        return histograms

    histograms = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: RC offset rule ===")
    for rule, histogram in histograms.items():
        print(f"{rule:>13}: {dict(sorted(histogram.items()))}")
    # The least-loaded rule never packs a channel more densely than the
    # first-feasible rule's worst cell.
    assert max(histograms["least_loaded"]) <= max(histograms["first"])


@pytest.mark.benchmark(group="ablation")
def test_ablation_retransmission_slots(benchmark, wustl, scale):
    """Dedicated retransmission slots: capacity cost vs PDR benefit."""
    topology, environment = wustl
    network = prepare_network(topology, channels=(11, 12, 13, 14))

    def run():
        rows = {}
        for attempts in (1, 2):
            rng = np.random.default_rng(0)
            flow_set = build_reliability_flow_set(network, rng)
            policy = ConservativeReusePolicy(rho_t=2)
            result = FixedPriorityScheduler(
                topology.num_nodes, 4, network.reuse, policy,
                attempts_per_link=attempts).run(flow_set)
            if not result.schedulable:
                rows[attempts] = None
                continue
            simulator = TschSimulator(
                result.schedule, flow_set, environment,
                network.topology.channel_map,
                config=SimulationConfig(seed=0))
            stats = simulator.run(scale["repetitions"])
            rows[attempts] = (len(result.schedule), stats.median_pdr(),
                              stats.worst_pdr())
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: retransmission slot reservation ===")
    print("attempts  entries  median PDR  worst PDR")
    for attempts, row in sorted(rows.items()):
        if row is None:
            print(f"{attempts:>8}  unschedulable")
            continue
        entries, median, worst = row
        print(f"{attempts:>8}  {entries:>7}  {median:>10.3f}  {worst:>9.3f}")
    if rows[1] and rows[2]:
        # The retransmission slot buys end-to-end reliability.
        assert rows[2][2] >= rows[1][2]
        # ... at twice the slot demand.
        assert rows[2][0] == 2 * rows[1][0]
