"""Figure 10: PRRs of rejected vs accepted low-reliability links.

The detection policy's signature result: *rejected* links (degradation
attributed to channel reuse) perform well in contention-free slots but
poorly under reuse; *accepted* links (degraded by external interference)
perform poorly in both.
"""

import pytest

from repro.detection.classifier import Verdict
from repro.experiments.detection_exp import run_detection
from repro.testbeds import WUSTL_PLAN


@pytest.mark.benchmark(group="fig10")
def test_fig10_rejected_vs_accepted_prr(benchmark, wustl, scale):
    topology, environment = wustl
    outcomes = benchmark.pedantic(
        run_detection,
        args=(topology, environment, WUSTL_PLAN),
        kwargs=dict(num_epochs=scale["epochs"], seed=0),
        rounds=1, iterations=1)

    print("\n=== Fig 10: PRR of rejected/accepted links ===")
    gaps = []
    for outcome in outcomes:
        assert outcome.schedulable
        rejected, accepted = [], []
        for diagnoses in outcome.diagnoses.values():
            for diagnosis in diagnoses:
                if diagnosis.verdict is Verdict.REJECT:
                    rejected.append(diagnosis)
                elif diagnosis.verdict is Verdict.ACCEPT:
                    accepted.append(diagnosis)
        print(f"{outcome.policy}/{outcome.condition}: "
              f"reuse links {len(outcome.reuse_links)}, "
              f"low-PRR links {len(outcome.low_prr_links)}, "
              f"rejected {len(set(d.link for d in rejected))}, "
              f"accepted {len(set(d.link for d in accepted))}")
        for diagnosis in rejected:
            print(f"  reject {diagnosis.link}: reuse PRR "
                  f"{diagnosis.reuse_prr:.2f}, contention-free "
                  f"{diagnosis.contention_free_prr:.2f}")
            if diagnosis.contention_free_prr is not None:
                gaps.append(diagnosis.contention_free_prr
                            - diagnosis.reuse_prr)
        for diagnosis in accepted:
            cf = diagnosis.contention_free_prr
            print(f"  accept {diagnosis.link}: reuse PRR "
                  f"{diagnosis.reuse_prr:.2f}, contention-free "
                  f"{cf if cf is None else round(cf, 2)}")

    # Rejected links must show the paper's signature: good without
    # reuse, bad with it.
    assert gaps, "expected at least one rejected link across conditions"
    assert sum(gaps) / len(gaps) > 0.1

    # RC involves far fewer links in reuse than RA (paper: 20 vs 95).
    ra = next(o for o in outcomes
              if o.policy == "RA" and o.condition == "clean")
    rc = next(o for o in outcomes
              if o.policy == "RC" and o.condition == "clean")
    assert len(rc.reuse_links) < len(ra.reuse_links) / 2
