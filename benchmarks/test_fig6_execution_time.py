"""Figure 6: scheduler execution time vs number of flows.

Paper setup: 5 channels, P = [2^0, 2^2], peer-to-peer, 40-160 flows.
Expected shape: NR is fastest; the channel-reuse schedulers cost more
and grow superlinearly with load.  (Absolute numbers and the RA-vs-RC
ordering depend on implementation constants — see EXPERIMENTS.md.)
"""

import pytest

from repro.flows.generator import PeriodRange
from repro.experiments.schedulability import run_sweep
from repro.routing.traffic import TrafficType

from conftest import print_series

FLOWS = [40, 80, 120, 160]


@pytest.mark.benchmark(group="fig6")
def test_fig6_execution_time(benchmark, indriya, scale):
    topology, _ = indriya
    sets = max(3, scale["flow_sets"] // 2)
    result = benchmark.pedantic(
        run_sweep,
        args=(topology, TrafficType.PEER_TO_PEER, "flows", FLOWS),
        kwargs=dict(fixed_channels=5, period_range=PeriodRange(0, 2),
                    num_flow_sets=sets, seed=60,
                    collect_histograms=False),
        rounds=1, iterations=1)
    times = result.mean_times_ms()
    print_series("Fig 6: scheduler execution time (ms)", times)
    for x in FLOWS:
        assert times["NR"][x] <= times["RC"][x]
    # Cost grows with the number of flows for every scheduler.
    for policy in ("NR", "RA", "RC"):
        assert times[policy][FLOWS[-1]] > times[policy][FLOWS[0]]
