"""Figure 3: schedulable ratio, peer-to-peer traffic, WUSTL testbed.

(a) ratio vs #channels; (b) ratio vs #flows.  Same expected ordering as
Figure 2 — the paper uses this testbed to demonstrate generality.
The denser WUSTL network has shorter routes, so heavier flow counts are
needed to saturate it.
"""

import pytest

from repro.flows.generator import PeriodRange
from repro.experiments.schedulability import run_sweep
from repro.routing.traffic import TrafficType

from conftest import print_series

CHANNELS = [3, 4, 5, 8, 12, 16]
FLOWS = [60, 100, 140, 180]


@pytest.mark.benchmark(group="fig3")
def test_fig3a_vs_channels(benchmark, wustl, scale):
    topology, _ = wustl
    result = benchmark.pedantic(
        run_sweep,
        args=(topology, TrafficType.PEER_TO_PEER, "channels", CHANNELS),
        kwargs=dict(fixed_flows=80, period_range=PeriodRange(-1, 3),
                    num_flow_sets=scale["flow_sets"], seed=30),
        rounds=1, iterations=1)
    ratios = result.schedulable_ratios()
    print_series("Fig 3(a): WUSTL p2p, P=[2^-1,2^3], 80 flows", ratios)
    for x in CHANNELS:
        assert ratios["RA"][x] >= ratios["NR"][x]
        assert ratios["RC"][x] >= ratios["NR"][x]


@pytest.mark.benchmark(group="fig3")
def test_fig3b_vs_flows(benchmark, wustl, scale):
    topology, _ = wustl
    result = benchmark.pedantic(
        run_sweep,
        args=(topology, TrafficType.PEER_TO_PEER, "flows", FLOWS),
        kwargs=dict(fixed_channels=4, period_range=PeriodRange(-1, 3),
                    num_flow_sets=scale["flow_sets"], seed=31),
        rounds=1, iterations=1)
    ratios = result.schedulable_ratios()
    print_series("Fig 3(b): WUSTL p2p, 4 channels, vs #flows", ratios)
    heavy = FLOWS[-1]
    # NR collapses under heavy load while the reuse schedulers survive.
    # (This point also shows the paper's caveat that RC can trail RA by
    # up to ~20% in the worst case.)
    assert ratios["NR"][heavy] < ratios["RC"][heavy]
    assert ratios["NR"][heavy] < ratios["RA"][heavy]
