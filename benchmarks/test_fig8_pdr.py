"""Figure 8: PDR box plots of 5 flow sets under NR / RA / RC (WUSTL).

Paper setup: 50 flows (half at 2^-1 s, half at 2^0 s), 4 channels
(11-14), each schedule executed 100 times.  Expected shape:

* median PDR: all three close (within ~1-2%);
* worst-case PDR: RC within a few percent of NR, RA tens of percent
  below NR.
"""

import pytest

from repro.experiments.reliability import run_reliability

from conftest import print_series


@pytest.mark.benchmark(group="fig8")
def test_fig8_pdr_boxplots(benchmark, wustl, scale):
    topology, environment = wustl
    outcomes = benchmark.pedantic(
        run_reliability,
        args=(topology, environment),
        kwargs=dict(num_flow_sets=5, repetitions=scale["repetitions"],
                    seed=0),
        rounds=1, iterations=1)

    print("\n=== Fig 8: PDR box plots (per flow set) ===")
    by_set = {}
    for outcome in outcomes:
        by_set.setdefault(outcome.set_index, {})[outcome.policy] = outcome
    medians = {p: {} for p in ("NR", "RA", "RC")}
    worsts = {p: {} for p in ("NR", "RA", "RC")}
    for set_index in sorted(by_set):
        for policy, outcome in sorted(by_set[set_index].items()):
            assert outcome.schedulable, (
                f"{policy} failed to schedule flow set {set_index}")
            print(f"set {set_index} {policy}: {outcome.pdr_box.row()}")
            medians[policy][set_index] = outcome.median_pdr
            worsts[policy][set_index] = outcome.worst_pdr
    print_series("Fig 8 medians", medians)
    print_series("Fig 8 worst-case", worsts)

    for set_index in sorted(by_set):
        nr = by_set[set_index]["NR"]
        ra = by_set[set_index]["RA"]
        rc = by_set[set_index]["RC"]
        # Medians within a few percent of each other.
        assert abs(rc.median_pdr - nr.median_pdr) <= 0.05
        assert abs(ra.median_pdr - nr.median_pdr) <= 0.05
        # RC's worst case stays close to NR's.
        assert rc.worst_pdr >= nr.worst_pdr - 0.10
    # RA's aggregate worst case falls clearly below NR's and RC's.
    mean = lambda d: sum(d.values()) / len(d)
    assert mean(worsts["RA"]) < mean(worsts["NR"]) - 0.02
    assert mean(worsts["RA"]) < mean(worsts["RC"]) - 0.02
