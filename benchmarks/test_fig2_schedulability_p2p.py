"""Figure 2: schedulable ratio, peer-to-peer traffic, Indriya.

(a) ratio vs #channels, P = [2^0, 2^4];
(b) ratio vs #channels, P = [2^-1, 2^3] with a heavy flow count (the
    paper's NR cannot schedule anything here);
(c) ratio vs #flows at 5 channels — the paper's NR collapses by 120
    flows while RA and RC stay near 100%.
"""

import pytest

from repro.flows.generator import PeriodRange
from repro.experiments.schedulability import run_sweep
from repro.routing.traffic import TrafficType

from conftest import print_series

CHANNELS = [3, 4, 5, 8, 12, 16]
FLOWS = [40, 80, 120, 160]


@pytest.mark.benchmark(group="fig2")
def test_fig2a_vs_channels_long_periods(benchmark, indriya, scale):
    topology, _ = indriya
    result = benchmark.pedantic(
        run_sweep,
        args=(topology, TrafficType.PEER_TO_PEER, "channels", CHANNELS),
        kwargs=dict(fixed_flows=40, period_range=PeriodRange(0, 4),
                    num_flow_sets=scale["flow_sets"], seed=20),
        rounds=1, iterations=1)
    ratios = result.schedulable_ratios()
    print_series("Fig 2(a): p2p, P=[2^0,2^4], 40 flows", ratios)
    for x in CHANNELS:
        assert ratios["RA"][x] >= ratios["NR"][x]
        assert ratios["RC"][x] >= ratios["NR"][x]


@pytest.mark.benchmark(group="fig2")
def test_fig2b_vs_channels_heavy(benchmark, indriya, scale):
    topology, _ = indriya
    result = benchmark.pedantic(
        run_sweep,
        args=(topology, TrafficType.PEER_TO_PEER, "channels", CHANNELS),
        kwargs=dict(fixed_flows=60, period_range=PeriodRange(-1, 3),
                    num_flow_sets=scale["flow_sets"], seed=21),
        rounds=1, iterations=1)
    ratios = result.schedulable_ratios()
    print_series("Fig 2(b): p2p, P=[2^-1,2^3], 60 flows", ratios)
    # NR struggles at few channels while reuse stays usable.
    few = CHANNELS[0]
    assert ratios["RC"][few] > ratios["NR"][few]
    assert ratios["RA"][few] > ratios["NR"][few]


@pytest.mark.benchmark(group="fig2")
def test_fig2c_vs_flows(benchmark, indriya, scale):
    topology, _ = indriya
    result = benchmark.pedantic(
        run_sweep,
        args=(topology, TrafficType.PEER_TO_PEER, "flows", FLOWS),
        kwargs=dict(fixed_channels=5, period_range=PeriodRange(0, 4),
                    num_flow_sets=scale["flow_sets"], seed=22),
        rounds=1, iterations=1)
    ratios = result.schedulable_ratios()
    print_series("Fig 2(c): p2p, 5 channels, vs #flows", ratios)
    heavy = FLOWS[-1]
    # The paper's headline: at heavy load NR collapses, reuse survives.
    assert ratios["NR"][heavy] < ratios["RC"][heavy]
    assert ratios["NR"][heavy] < ratios["RA"][heavy]
