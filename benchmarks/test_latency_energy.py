"""Extension benches: end-to-end latency and energy under NR / RA / RC.

Not paper figures — these quantify two downstream effects of channel
reuse the paper motivates but does not plot: reuse compresses schedules
(lower end-to-end latency, more control-loop margin) without
materially changing radio duty cycle (the same transmissions happen,
just packed into fewer slots).
"""

import numpy as np
import pytest

from repro.analysis.energy import network_lifetime_days, superframe_energy
from repro.analysis.latency import LatencySummary, instance_latencies
from repro.experiments.common import (
    build_workload,
    prepare_network,
    schedule_workload,
)
from repro.flows.generator import PeriodRange
from repro.mac.superframe import build_superframe
from repro.routing.traffic import TrafficType


@pytest.fixture(scope="module")
def heavy_workload(wustl):
    topology, _ = wustl
    network = prepare_network(topology, channels=(11, 12, 13, 14))
    rng = np.random.default_rng(8)
    flows = build_workload(network, 60, PeriodRange(-1, 1),
                           TrafficType.PEER_TO_PEER, rng)
    return network, flows


@pytest.mark.benchmark(group="extension")
def test_latency_comparison(benchmark, heavy_workload):
    network, flows = heavy_workload

    def run():
        summaries = {}
        for policy in ("NR", "RA", "RC"):
            result = schedule_workload(network, flows, policy)
            if result.schedulable:
                latencies = instance_latencies(result.schedule, flows)
                summaries[policy] = LatencySummary.from_latencies(latencies)
        return summaries

    summaries = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Extension: end-to-end latency (slots) ===")
    print("policy     mean   median      p95      max  min-slack")
    for policy, summary in summaries.items():
        print(f"{policy:>6} {summary.mean:8.1f} {summary.median:8.1f} "
              f"{summary.p95:8.1f} {summary.maximum:8d} "
              f"{summary.min_slack:10d}")
    assert "RA" in summaries and "RC" in summaries
    if "NR" in summaries:
        assert summaries["RA"].mean <= summaries["NR"].mean + 1e-9


@pytest.mark.benchmark(group="extension")
def test_energy_comparison(benchmark, heavy_workload):
    network, flows = heavy_workload

    def run():
        rows = {}
        for policy in ("NR", "RA", "RC"):
            result = schedule_workload(network, flows, policy)
            if not result.schedulable:
                continue
            superframe = build_superframe(result.schedule)
            energies = superframe_energy(superframe)
            rows[policy] = (
                superframe.mean_duty_cycle(),
                superframe.busiest_device()[1],
                network_lifetime_days(superframe),
                sum(e.charge_mc for e in energies.values()),
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Extension: radio duty cycle / lifetime ===")
    print("policy  mean-duty  max-duty  lifetime-days  total-mC")
    for policy, (mean_duty, max_duty, lifetime, charge) in rows.items():
        print(f"{policy:>6} {mean_duty:10.4f} {max_duty:9.4f} "
              f"{lifetime:14.0f} {charge:9.1f}")
    # The same transmissions occur under every policy, so total charge is
    # (nearly) identical: reuse packs slots, it does not add radio-on time.
    charges = [row[3] for row in rows.values()]
    assert max(charges) - min(charges) < 0.01 * max(charges)
