"""Figure 4: distribution of transmissions per channel, RA vs RC (Indriya).

(a) centralized, (b) peer-to-peer.  Expected shape: RC attains a higher
proportion of 1 Tx/channel (no reuse) than RA, and schedules fewer
concurrent transmissions per channel when a channel is reused.
"""

import pytest

from repro.flows.generator import PeriodRange
from repro.experiments.schedulability import run_sweep
from repro.routing.traffic import TrafficType

from conftest import print_histogram


def _mean_bucket(histogram):
    total = sum(histogram.values())
    return sum(k * v for k, v in histogram.items()) / total


@pytest.mark.benchmark(group="fig4")
def test_fig4a_centralized(benchmark, indriya, scale):
    topology, _ = indriya
    result = benchmark.pedantic(
        run_sweep,
        args=(topology, TrafficType.CENTRALIZED, "channels", [3, 5, 8]),
        kwargs=dict(fixed_flows=30, period_range=PeriodRange(-1, 3),
                    num_flow_sets=scale["flow_sets"], seed=40,
                    policies=("RA", "RC")),
        rounds=1, iterations=1)
    histograms = {policy: result.tx_per_cell_fractions(policy)
                  for policy in ("RA", "RC")}
    print_histogram("Fig 4(a): Tx/channel, centralized", histograms)
    if histograms["RA"] and histograms["RC"]:
        assert histograms["RC"].get(1, 0) >= histograms["RA"].get(1, 0)


@pytest.mark.benchmark(group="fig4")
def test_fig4b_peer_to_peer(benchmark, indriya, scale):
    topology, _ = indriya
    result = benchmark.pedantic(
        run_sweep,
        args=(topology, TrafficType.PEER_TO_PEER, "channels", [3, 5, 8]),
        kwargs=dict(fixed_flows=50, period_range=PeriodRange(-1, 3),
                    num_flow_sets=scale["flow_sets"], seed=41,
                    policies=("RA", "RC")),
        rounds=1, iterations=1)
    histograms = {policy: result.tx_per_cell_fractions(policy)
                  for policy in ("RA", "RC")}
    print_histogram("Fig 4(b): Tx/channel, peer-to-peer", histograms)
    # RC: more exclusive cells, fewer transmissions per reused channel.
    assert histograms["RC"][1] > histograms["RA"][1]
    assert _mean_bucket(histograms["RC"]) < _mean_bucket(histograms["RA"])
