"""Figure 11: rejected links per epoch under external interference.

Expected shape: the detection policy flags a *consistent* set of links
across epochs (the paper observes "almost the same set of rejected
links" in every epoch), and RA produces at least as many reuse-degraded
links as RC.
"""

import pytest

from repro.experiments.detection_exp import run_detection
from repro.testbeds import WUSTL_PLAN


@pytest.mark.benchmark(group="fig11")
def test_fig11_rejected_links_per_epoch(benchmark, wustl, scale):
    topology, environment = wustl
    outcomes = benchmark.pedantic(
        run_detection,
        args=(topology, environment, WUSTL_PLAN),
        kwargs=dict(num_epochs=scale["epochs"], seed=0,
                    conditions=("wifi",)),
        rounds=1, iterations=1)

    print("\n=== Fig 11: rejected links per epoch (WiFi interference) ===")
    for outcome in outcomes:
        assert outcome.schedulable
        counts = {epoch: len(links)
                  for epoch, links in sorted(
                      outcome.rejected_per_epoch.items())}
        print(f"{outcome.policy}: per-epoch rejected counts {counts}")
        for epoch, links in sorted(outcome.rejected_per_epoch.items()):
            print(f"  epoch {epoch}: {links}")

    ra = next(o for o in outcomes if o.policy == "RA")
    rc = next(o for o in outcomes if o.policy == "RC")

    # Epoch-to-epoch consistency: every pair of epochs with rejections
    # shares links (the classifier keeps flagging the same victims).
    for outcome in (ra, rc):
        nonempty = [set(links) for links in
                    outcome.rejected_per_epoch.values() if links]
        if len(nonempty) >= 2:
            union = set().union(*nonempty)
            intersection = set(nonempty[0])
            for links in nonempty[1:]:
                intersection &= links
            assert len(intersection) >= 1 or len(union) <= 3
